//! Figure 15: the four will-it-scale benchmarks (lock1, lock2, open1,
//! open2), stock vs CNA qspinlock, plus a real-thread sanity run of each
//! benchmark against the user-space VFS substrates.

use bench::{kernel_lock_ids, print_cna_vs_mcs_summary, run_figure, two_socket_spec};
use harness::experiments::Metric;
use kernel_sim::{run_will_it_scale_dyn, WisBenchmark, WisConfig};
use numa_sim::workloads::{will_it_scale, WillItScale};
use registry::LockId;

fn main() {
    let panels = [
        ("fig15a_lock1", WillItScale::Lock1),
        ("fig15b_lock2", WillItScale::Lock2),
        ("fig15c_open1", WillItScale::Open1),
        ("fig15d_open2", WillItScale::Open2),
    ];
    let specs: Vec<_> = panels
        .iter()
        .map(|(id, bench)| {
            two_socket_spec(
                id,
                &format!(
                    "Figure 15: will-it-scale {} (ops/us), stock vs CNA",
                    bench.name()
                ),
                will_it_scale(*bench),
                kernel_lock_ids(),
                Metric::ThroughputOpsPerUs,
            )
        })
        .collect();
    for (sweep, (id, _)) in run_figure(&specs).iter().zip(&panels) {
        print_cna_vs_mcs_summary(sweep);
        let cna = sweep.final_value("CNA").unwrap_or(0.0);
        let stock = sweep.final_value("MCS").unwrap_or(f64::MAX);
        assert!(
            cna > stock,
            "[{id}] CNA ({cna:.3}) should beat stock ({stock:.3}) at the largest thread count",
        );
    }

    // Substrate sanity check: every benchmark makes progress on the real
    // CNA qspinlock (selected through the registry) against the real
    // fd-table / file-lock / dentry code.
    let sizing = harness::Scale::from_env().substrate_run();
    for bench in WisBenchmark::all() {
        let report = run_will_it_scale_dyn(
            LockId::QSpinCna,
            bench,
            &WisConfig {
                threads: sizing.threads,
                duration: sizing.duration,
            },
        );
        println!(
            "will-it-scale substrate check: {} completed {} iterations",
            report.benchmark,
            report.total_ops()
        );
        assert!(report.total_ops() > 0);
    }
}
