//! Figure 13: locktorture on the 2-socket machine, (a) default kernel
//! configuration and (b) with lockstat enabled (shared-data updates in the
//! critical section). "stock" is the MCS-slow-path qspinlock; "CNA" is the
//! paper's patched slow path.
//!
//! A real-thread run of the user-space qspinlock reproduction (4-byte lock,
//! per-CPU nodes) is also executed as a substrate sanity check.

use bench::{kernel_lock_ids, print_cna_vs_mcs_summary, run_figure, two_socket_spec};
use harness::experiments::Metric;
use kernel_sim::{run_locktorture_dyn, LockTortureConfig};
use numa_sim::workloads::locktorture;

fn main() {
    let specs = vec![
        two_socket_spec(
            "fig13a_locktorture",
            "Figure 13 (a): locktorture, 2-socket, lockstat disabled (ops/us)",
            locktorture(false),
            kernel_lock_ids(),
            Metric::ThroughputOpsPerUs,
        ),
        two_socket_spec(
            "fig13b_locktorture_lockstat",
            "Figure 13 (b): locktorture, 2-socket, lockstat enabled (ops/us)",
            locktorture(true),
            kernel_lock_ids(),
            Metric::ThroughputOpsPerUs,
        ),
    ];
    let sweeps = run_figure(&specs);
    for sweep in &sweeps {
        print_cna_vs_mcs_summary(sweep);
        let cna = sweep.final_value("CNA").unwrap_or(0.0);
        let stock = sweep.final_value("MCS").unwrap_or(f64::MAX);
        assert!(cna > stock, "CNA ({cna:.3}) should beat stock ({stock:.3})");
    }
    // The lockstat configuration adds shared data to the critical section, so
    // the CNA-vs-stock gap must widen (32% vs 14% at 70 threads in the paper).
    let gap = |s: &harness::experiments::SweepResult| {
        s.final_value("CNA").unwrap_or(0.0) / s.final_value("MCS").unwrap_or(1.0)
    };
    assert!(
        gap(&sweeps[1]) > gap(&sweeps[0]),
        "the lockstat configuration should widen the CNA advantage"
    );

    // Substrate sanity check with the real qspinlock implementations,
    // selected through the registry (both slow paths).
    let sizing = harness::Scale::from_env().substrate_run();
    let cfg = LockTortureConfig {
        threads: sizing.threads,
        duration: sizing.duration,
        lockstat: true,
    };
    for id in kernel_lock_ids() {
        let report = run_locktorture_dyn(id, &cfg);
        println!(
            "qspinlock substrate check: {} completed {} ops (wall-clock, single-CPU host)",
            id,
            report.total_ops()
        );
        assert!(report.total_ops() > 0);
    }
}
