//! Figure 13: locktorture on the 2-socket machine, (a) default kernel
//! configuration and (b) with lockstat enabled (shared-data updates in the
//! critical section). "stock" is the MCS-slow-path qspinlock; "CNA" is the
//! paper's patched slow path.
//!
//! A real-thread run of the user-space qspinlock reproduction (4-byte lock,
//! per-CPU nodes) is also executed as a substrate sanity check.

use std::time::Duration;

use bench::{kernel_locks, print_cna_vs_mcs_summary, run_figure, two_socket_spec};
use harness::sweep::Metric;
use kernel_sim::{run_locktorture, LockTortureConfig};
use numa_sim::workloads::locktorture;
use qspinlock::{CnaQSpinLock, StockQSpinLock};

fn main() {
    let specs = vec![
        two_socket_spec(
            "fig13a_locktorture",
            "Figure 13 (a): locktorture, 2-socket, lockstat disabled (ops/us)",
            locktorture(false),
            kernel_locks(),
            Metric::ThroughputOpsPerUs,
        ),
        two_socket_spec(
            "fig13b_locktorture_lockstat",
            "Figure 13 (b): locktorture, 2-socket, lockstat enabled (ops/us)",
            locktorture(true),
            kernel_locks(),
            Metric::ThroughputOpsPerUs,
        ),
    ];
    let sweeps = run_figure(&specs);
    for sweep in &sweeps {
        print_cna_vs_mcs_summary(sweep);
        let cna = sweep.final_value("CNA").unwrap_or(0.0);
        let stock = sweep.final_value("MCS").unwrap_or(f64::MAX);
        assert!(cna > stock, "CNA ({cna:.3}) should beat stock ({stock:.3})");
    }
    // The lockstat configuration adds shared data to the critical section, so
    // the CNA-vs-stock gap must widen (32% vs 14% at 70 threads in the paper).
    let gap = |s: &harness::sweep::Sweep| {
        s.final_value("CNA").unwrap_or(0.0) / s.final_value("MCS").unwrap_or(1.0)
    };
    assert!(
        gap(&sweeps[1]) > gap(&sweeps[0]),
        "the lockstat configuration should widen the CNA advantage"
    );

    // Substrate sanity check with the real qspinlock implementations.
    let cfg = LockTortureConfig {
        threads: 2,
        duration: Duration::from_millis(50),
        lockstat: true,
    };
    let stock = run_locktorture::<StockQSpinLock>(&cfg);
    let cna = run_locktorture::<CnaQSpinLock>(&cfg);
    println!(
        "qspinlock substrate check: stock {} ops, CNA {} ops (wall-clock, single-CPU host)",
        stock.total_ops(),
        cna.total_ops()
    );
    assert!(stock.total_ops() > 0 && cna.total_ops() > 0);
}
