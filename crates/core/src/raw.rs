//! The CNA lock algorithm (paper Figures 2–5).
//!
//! The lock's shared mutable state is a single word: the tail pointer of the
//! main queue. Everything else lives in the waiters' queue nodes:
//!
//! * `spin` — 0 while waiting; on hand-over the predecessor stores either `1`
//!   (lock granted, secondary queue empty) or a pointer to the head of the
//!   secondary queue (lock granted, secondary queue non-empty). Reusing the
//!   `spin` word to carry the secondary-queue head is what keeps the lock at
//!   one word (§4).
//! * `socket` — the waiter's NUMA node, recorded only on the contended path.
//! * `sec_tail` — meaningful only in the node at the *head* of the secondary
//!   queue: caches the secondary queue's tail so splicing is O(1).
//! * `next` — the main- or secondary-queue link, exactly as in MCS.

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

use sync_core::atomics::{AtomicCell, Atomics, StdAtomics};
use sync_core::raw::RawLock;

use crate::config::CnaConfig;
use crate::rng::pseudo_rand;

/// `spin` value of a waiter that has not been granted the lock yet.
const SPIN_WAITING: usize = 0;
/// `spin` value meaning "lock granted, secondary queue empty".
const SPIN_GRANTED: usize = 1;
/// `socket` value meaning "not recorded yet".
const SOCKET_UNKNOWN: isize = -1;

/// Per-acquisition queue node of the CNA lock (the paper's `cna_node_t`).
///
/// A node may be reused for any number of acquisitions (of any CNA lock) as
/// long as the acquisitions do not overlap; [`CnaLock::lock`] re-initialises
/// every field it relies on.
#[derive(Debug)]
pub struct CnaNode<A: Atomics = StdAtomics> {
    /// Hand-over word; see the module documentation.
    spin: A::Usize,
    /// NUMA node of the waiting thread, or [`SOCKET_UNKNOWN`].
    socket: A::Isize,
    /// Tail of the secondary queue; valid only in the secondary queue's head.
    sec_tail: A::Ptr<CnaNode<A>>,
    /// Next node in the main or secondary queue.
    next: A::Ptr<CnaNode<A>>,
}

impl<A: Atomics> Default for CnaNode<A> {
    fn default() -> Self {
        CnaNode {
            spin: A::Usize::new(SPIN_WAITING),
            socket: A::Isize::new(SOCKET_UNKNOWN),
            sec_tail: A::Ptr::new(ptr::null_mut()),
            next: A::Ptr::new(ptr::null_mut()),
        }
    }
}

impl<A: Atomics> CnaNode<A> {
    /// Creates a fresh node, ready for an acquisition.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Compile-time parameters of a [`CnaLock`].
///
/// Using an (empty) parameter type keeps the lock itself at exactly one word
/// of memory — the paper's headline property — while still allowing the
/// shuffle-reduction variant and the test configurations to coexist. For
/// run-time tunable thresholds (parameter sweeps) use [`TunableCnaLock`].
pub trait CnaParams: Send + Sync + 'static {
    /// Display name used in benchmark tables.
    const NAME: &'static str = "CNA";
    /// Fairness mask of `keep_lock_local()` (paper `THRESHOLD`).
    const KEEP_LOCAL_MASK: u64 = crate::THRESHOLD;
    /// Enables the §6 shuffle-reduction optimisation.
    const SHUFFLE_REDUCTION: bool = false;
    /// Mask of the shuffle-reduction draw (paper `THRESHOLD2`).
    const SHUFFLE_MASK: u64 = crate::THRESHOLD2;

    /// The parameters as a run-time [`CnaConfig`] value.
    fn config() -> CnaConfig {
        CnaConfig {
            keep_local_mask: Self::KEEP_LOCAL_MASK,
            shuffle_reduction: Self::SHUFFLE_REDUCTION,
            shuffle_mask: Self::SHUFFLE_MASK,
        }
    }
}

/// The paper's default parameters ("CNA" in the plots).
#[derive(Debug, Default, Clone, Copy)]
pub struct PaperParams;
impl CnaParams for PaperParams {}

/// The paper's "CNA (opt)" parameters: shuffle reduction enabled (§6).
#[derive(Debug, Default, Clone, Copy)]
pub struct ShuffleReductionParams;
impl CnaParams for ShuffleReductionParams {
    const NAME: &'static str = "CNA (opt)";
    const SHUFFLE_REDUCTION: bool = true;
}

/// Test/diagnostic parameters: every hand-over flushes the secondary queue,
/// degrading CNA to FIFO order (behaviourally close to MCS).
#[derive(Debug, Default, Clone, Copy)]
pub struct AlwaysFlushParams;
impl CnaParams for AlwaysFlushParams {
    const NAME: &'static str = "CNA (always-flush)";
    const KEEP_LOCAL_MASK: u64 = 0;
}

/// Test/diagnostic parameters: the secondary queue is never flushed by the
/// fairness policy (maximum locality, deterministic hand-over for tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct NeverFlushParams;
impl CnaParams for NeverFlushParams {
    const NAME: &'static str = "CNA (never-flush)";
    const KEEP_LOCAL_MASK: u64 = u64::MAX;
}

/// The compact NUMA-aware lock with compile-time parameters `P`.
///
/// `size_of::<CnaLock>()` is one pointer — the paper's central claim — no
/// matter how many sockets the machine has.
#[derive(Debug)]
pub struct CnaLock<P: CnaParams = PaperParams, A: Atomics = StdAtomics> {
    tail: A::Ptr<CnaNode<A>>,
    _params: PhantomData<P>,
}

/// The "CNA (opt)" lock: CNA with the shuffle-reduction optimisation.
pub type CnaLockOpt = CnaLock<ShuffleReductionParams>;

impl<P: CnaParams, A: Atomics> Default for CnaLock<P, A> {
    fn default() -> Self {
        Self::new_in()
    }
}

impl<P: CnaParams> CnaLock<P> {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        CnaLock {
            tail: AtomicPtr::new(ptr::null_mut()),
            _params: PhantomData,
        }
    }
}

impl<P: CnaParams, A: Atomics> CnaLock<P, A> {
    /// Creates an unlocked lock for any atomics family.
    pub fn new_in() -> Self {
        CnaLock {
            tail: A::Ptr::new(ptr::null_mut()),
            _params: PhantomData,
        }
    }

    /// Returns `true` when some thread holds or is queueing for the lock.
    ///
    /// Like the kernel's `queued_spin_is_locked`, this is inherently racy and
    /// only useful as a heuristic or in quiescent states (e.g. asserts).
    pub fn is_contended_or_held(&self) -> bool {
        !self.tail.load(Ordering::Relaxed).is_null()
    }
}

impl<P: CnaParams, A: Atomics> RawLock for CnaLock<P, A> {
    type Node = CnaNode<A>;
    const NAME: &'static str = P::NAME;

    unsafe fn lock(&self, node: &CnaNode<A>) {
        // SAFETY: forwarded contract — the caller pins `node` for the whole
        // acquisition.
        unsafe { cna_lock::<A>(&self.tail, node) }
    }

    unsafe fn unlock(&self, node: &CnaNode<A>) {
        let cfg = P::config();
        // SAFETY: forwarded contract — `node` is the acquisition's node and
        // the caller holds the lock.
        unsafe { cna_unlock::<A>(&self.tail, node, &cfg) }
    }
}

/// CNA lock with run-time configurable thresholds.
///
/// Unlike [`CnaLock`] this occupies more than one word (it carries its
/// [`CnaConfig`]); it exists for threshold sweeps and ablation benchmarks.
#[derive(Debug)]
pub struct TunableCnaLock<A: Atomics = StdAtomics> {
    tail: A::Ptr<CnaNode<A>>,
    config: CnaConfig,
}

impl TunableCnaLock {
    /// Creates an unlocked lock with the given configuration.
    pub const fn with_config(config: CnaConfig) -> Self {
        TunableCnaLock {
            tail: AtomicPtr::new(ptr::null_mut()),
            config,
        }
    }
}

impl<A: Atomics> TunableCnaLock<A> {
    /// Creates an unlocked lock with the given configuration for any atomics
    /// family.
    pub fn with_config_in(config: CnaConfig) -> Self {
        TunableCnaLock {
            tail: A::Ptr::new(ptr::null_mut()),
            config,
        }
    }

    /// The lock's configuration.
    pub fn config(&self) -> CnaConfig {
        self.config
    }
}

impl<A: Atomics> Default for TunableCnaLock<A> {
    fn default() -> Self {
        Self::with_config_in(CnaConfig::default())
    }
}

impl<A: Atomics> RawLock for TunableCnaLock<A> {
    type Node = CnaNode<A>;
    const NAME: &'static str = "CNA (tunable)";

    unsafe fn lock(&self, node: &CnaNode<A>) {
        // SAFETY: forwarded contract.
        unsafe { cna_lock::<A>(&self.tail, node) }
    }

    unsafe fn unlock(&self, node: &CnaNode<A>) {
        // SAFETY: forwarded contract.
        unsafe { cna_unlock::<A>(&self.tail, node, &self.config) }
    }
}

/// The paper's `keep_lock_local()`: non-zero (true) keeps the lock on the
/// current socket, zero (false) flushes the secondary queue.
#[inline]
fn keep_lock_local(cfg: &CnaConfig) -> bool {
    pseudo_rand() & cfg.keep_local_mask != 0
}

/// Acquisition (paper Fig. 3). One atomic instruction: the tail swap.
///
/// # Safety
///
/// `node` must stay pinned, unused by any other acquisition, until the
/// matching [`cna_unlock`] returns.
unsafe fn cna_lock<A: Atomics>(tail: &A::Ptr<CnaNode<A>>, me: &CnaNode<A>) {
    me.next.store(ptr::null_mut(), Ordering::Relaxed);
    me.socket.store(SOCKET_UNKNOWN, Ordering::Relaxed);
    me.spin.store(SPIN_WAITING, Ordering::Relaxed);

    let me_ptr = me as *const CnaNode<A> as *mut CnaNode<A>;
    debug_assert!(
        me_ptr as usize > SPIN_GRANTED,
        "node addresses must be distinguishable from the GRANTED sentinel"
    );

    // Add myself to the main queue. AcqRel: Release publishes the node
    // initialisation above; Acquire synchronises with the releasing CAS of a
    // previous holder that reset the tail to null (uncontended hand-over).
    let prev = tail.swap(me_ptr, Ordering::AcqRel);
    if prev.is_null() {
        // Uncontended: we own the lock. Store 1 so that, if we later hand
        // over locally, the successor receives a non-zero value (Fig. 3 l. 8).
        me.spin.store(SPIN_GRANTED, Ordering::Relaxed);
        return;
    }

    // Contended path only: record our socket (Fig. 3 l. 10).
    me.socket
        .store(numa_topology::current_socket() as isize, Ordering::Relaxed);

    // SAFETY: `prev` was the queue tail; its owner cannot complete unlock
    // (and therefore cannot reuse or free the node) before observing our
    // link, because its tail CAS must fail while we are enqueued behind it.
    unsafe {
        (*prev).next.store(me_ptr, Ordering::Release);
    }

    // Local spinning on our own node (Fig. 3 l. 13). Relaxed polling plus an
    // Acquire fence after the loop: the fence pairs with the predecessor's
    // Release hand-over store once observed, making both the lock and the
    // critical-section data it protects visible. This is the waiter-spin
    // downgrade the weak-memory CNA verification paper proves safe (audited
    // by `modelcheck`).
    A::spin_until(|| me.spin.load(Ordering::Relaxed) != SPIN_WAITING);
    A::fence(Ordering::Acquire);
}

/// Release (paper Fig. 4).
///
/// # Safety
///
/// `me` must be the node used for the acquisition being released and the
/// caller must hold the lock.
unsafe fn cna_unlock<A: Atomics>(tail: &A::Ptr<CnaNode<A>>, me: &CnaNode<A>, cfg: &CnaConfig) {
    let me_ptr = me as *const CnaNode<A> as *mut CnaNode<A>;
    let mut next = me.next.load(Ordering::Acquire);

    if next.is_null() {
        // No known successor in the main queue (Fig. 4 l. 18).
        let spin_val = me.spin.load(Ordering::Relaxed);
        if spin_val == SPIN_GRANTED {
            // Secondary queue empty too: try to close the lock (l. 23).
            if tail
                .compare_exchange(me_ptr, ptr::null_mut(), Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        } else {
            // Secondary queue non-empty: try to make it the main queue by
            // pointing the lock tail at its last node (l. 27–32).
            let sec_head = spin_val as *mut CnaNode<A>;
            // SAFETY: the secondary head is a waiter parked by a previous
            // hand-over; it cannot proceed (its spin is 0) until we or a
            // later holder grant it the lock, so the node is alive.
            let sec_tail = unsafe { (*sec_head).sec_tail.load(Ordering::Relaxed) };
            if tail
                .compare_exchange(me_ptr, sec_tail, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: as above; granting the lock to the secondary head.
                unsafe {
                    (*sec_head).spin.store(SPIN_GRANTED, Ordering::Release);
                }
                return;
            }
        }
        // The tail moved: some thread is enqueueing behind us. Wait for it to
        // complete the link (l. 36). Relaxed polling is enough here: the
        // Acquire re-load below is what the enqueuer's Release link store
        // synchronises with (audited by `modelcheck`).
        A::spin_until(|| !me.next.load(Ordering::Relaxed).is_null());
        next = me.next.load(Ordering::Acquire);
    }

    // Shuffle reduction (§6): with the secondary queue empty, hand straight
    // to the immediate successor with high probability, skipping the
    // successor search and any queue restructuring.
    if cfg.shuffle_reduction
        && me.spin.load(Ordering::Relaxed) == SPIN_GRANTED
        && pseudo_rand() & cfg.shuffle_mask != 0
    {
        // SAFETY: `next` is a live waiter (it spins until granted).
        unsafe {
            (*next).spin.store(SPIN_GRANTED, Ordering::Release);
        }
        return;
    }

    // Determine the next lock holder (Fig. 4 l. 40–49).
    let mut succ: *mut CnaNode<A> = ptr::null_mut();
    if keep_lock_local(cfg) {
        // SAFETY: we hold the lock, `next` is the live head of the waiters.
        succ = unsafe { find_successor::<A>(me, next) };
    }

    if !succ.is_null() {
        // Same-socket successor found: pass the lock together with the
        // current secondary-queue head (or 1 when it is empty). `me.spin` was
        // possibly updated by `find_successor`.
        let handoff = me.spin.load(Ordering::Relaxed);
        debug_assert_ne!(handoff, SPIN_WAITING);
        // SAFETY: `succ` is a live waiter on our socket.
        unsafe {
            (*succ).spin.store(handoff, Ordering::Release);
        }
        return;
    }

    let spin_val = me.spin.load(Ordering::Relaxed);
    if spin_val > SPIN_GRANTED {
        // No local successor but the secondary queue is non-empty: splice the
        // secondary queue in front of our main-queue successor and grant the
        // lock to its head (l. 44–46).
        let sec_head = spin_val as *mut CnaNode<A>;
        // SAFETY: secondary-queue nodes are live waiters; `next` likewise.
        unsafe {
            let sec_tail = (*sec_head).sec_tail.load(Ordering::Relaxed);
            (*sec_tail).next.store(next, Ordering::Release);
            (*sec_head).spin.store(SPIN_GRANTED, Ordering::Release);
        }
    } else {
        // Plain MCS hand-over to the immediate successor (l. 48).
        // SAFETY: `next` is a live waiter.
        unsafe {
            (*next).spin.store(SPIN_GRANTED, Ordering::Release);
        }
    }
}

/// The paper's `find_successor` (Fig. 5): scans the main queue for a waiter
/// on the holder's socket, moving the skipped prefix to the secondary queue.
///
/// Returns the successor, or null when no same-socket waiter is currently
/// linked into the main queue (in which case nothing was modified).
///
/// # Safety
///
/// The caller must hold the lock; `next` must be the (non-null, acquired)
/// value of `me.next`.
unsafe fn find_successor<A: Atomics>(me: &CnaNode<A>, next: *mut CnaNode<A>) -> *mut CnaNode<A> {
    let my_socket = {
        let s = me.socket.load(Ordering::Relaxed);
        if s == SOCKET_UNKNOWN {
            numa_topology::current_socket() as isize
        } else {
            s
        }
    };

    // SAFETY (applies to every dereference below): any node reachable from
    // the main or secondary queue while we hold the lock belongs to a thread
    // that is still spinning in `cna_lock` (its `spin` is 0) — it cannot
    // return, reuse or free its node until a holder grants it the lock, and
    // only the current holder (us) can do that.
    unsafe {
        if (*next).socket.load(Ordering::Relaxed) == my_socket {
            return next;
        }

        // `next` starts a run of remote waiters to be moved to the secondary
        // queue if we find a local successor further down.
        let moved_head = next;
        let mut moved_tail = next;
        let mut cur = (*next).next.load(Ordering::Acquire);

        while !cur.is_null() {
            if (*cur).socket.load(Ordering::Relaxed) == my_socket {
                let spin_val = me.spin.load(Ordering::Relaxed);
                if spin_val > SPIN_GRANTED {
                    // Append the skipped run to the existing secondary queue.
                    let sec_head = spin_val as *mut CnaNode<A>;
                    let sec_tail = (*sec_head).sec_tail.load(Ordering::Relaxed);
                    (*sec_tail).next.store(moved_head, Ordering::Release);
                } else {
                    // Secondary queue was empty: the run becomes the queue and
                    // our spin word now carries its head.
                    me.spin.store(moved_head as usize, Ordering::Relaxed);
                }
                // Terminate the secondary queue and cache its tail in the
                // head node (l. 67–68).
                (*moved_tail).next.store(ptr::null_mut(), Ordering::Release);
                let sec_head = me.spin.load(Ordering::Relaxed) as *mut CnaNode<A>;
                (*sec_head).sec_tail.store(moved_tail, Ordering::Release);
                return cur;
            }
            moved_tail = cur;
            cur = (*cur).next.load(Ordering::Acquire);
        }
    }
    ptr::null_mut()
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::SocketOverrideGuard;
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_state_is_exactly_one_word() {
        assert_eq!(
            std::mem::size_of::<CnaLock>(),
            std::mem::size_of::<*mut ()>(),
            "the CNA lock must be one word regardless of socket count"
        );
        assert_eq!(
            std::mem::size_of::<CnaLock<ShuffleReductionParams>>(),
            std::mem::size_of::<*mut ()>()
        );
    }

    #[test]
    fn node_is_four_words() {
        // spin + socket + secTail + next, as in the paper's cna_node_t.
        assert_eq!(
            std::mem::size_of::<CnaNode>(),
            4 * std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn single_thread_lock_unlock_repeated() {
        let lock = CnaLock::<PaperParams>::new();
        let node = CnaNode::new();
        for _ in 0..10_000 {
            // SAFETY: node pinned on this frame; matched lock/unlock.
            unsafe {
                lock.lock(&node);
                assert!(lock.is_contended_or_held());
                lock.unlock(&node);
            }
        }
        assert!(!lock.is_contended_or_held());
    }

    #[test]
    fn node_can_be_reused_across_locks() {
        let a = CnaLock::<PaperParams>::new();
        let b = CnaLock::<PaperParams>::new();
        let node = CnaNode::new();
        // SAFETY: acquisitions do not overlap.
        unsafe {
            a.lock(&node);
            a.unlock(&node);
            b.lock(&node);
            b.unlock(&node);
            a.lock(&node);
            a.unlock(&node);
        }
    }

    fn hammer<P: CnaParams>(threads: usize, iters: u64) {
        struct RacyCounter(std::cell::UnsafeCell<u64>);
        // SAFETY(test): only accessed under the lock.
        unsafe impl Sync for RacyCounter {}
        let lock = Arc::new(CnaLock::<P>::new());
        let counter = Arc::new(RacyCounter(std::cell::UnsafeCell::new(0)));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let _socket = SocketOverrideGuard::new(t % 2);
                    let node = CnaNode::new();
                    for _ in 0..iters {
                        // SAFETY: node pinned; matched pair; counter only
                        // touched under the lock.
                        unsafe {
                            lock.lock(&node);
                            *counter.0.get() += 1;
                            lock.unlock(&node);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all writers joined.
        assert_eq!(unsafe { *counter.0.get() }, threads as u64 * iters);
        assert!(!lock.is_contended_or_held());
    }

    #[test]
    fn mutual_exclusion_default_params() {
        hammer::<PaperParams>(4, 3_000);
    }

    #[test]
    fn mutual_exclusion_shuffle_reduction() {
        hammer::<ShuffleReductionParams>(4, 3_000);
    }

    #[test]
    fn mutual_exclusion_always_flush() {
        hammer::<AlwaysFlushParams>(3, 3_000);
    }

    #[test]
    fn mutual_exclusion_never_flush() {
        hammer::<NeverFlushParams>(4, 3_000);
    }

    #[test]
    fn mutual_exclusion_tunable() {
        struct RacyCounter(std::cell::UnsafeCell<u64>);
        // SAFETY(test): only accessed under the lock.
        unsafe impl Sync for RacyCounter {}
        let lock = Arc::new(TunableCnaLock::with_config(
            CnaConfig::default().keep_local_mask(0xf),
        ));
        let counter = Arc::new(RacyCounter(std::cell::UnsafeCell::new(0)));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let _socket = SocketOverrideGuard::new(t % 2);
                    let node = CnaNode::new();
                    for _ in 0..2_000 {
                        // SAFETY: as in `hammer`.
                        unsafe {
                            lock.lock(&node);
                            *counter.0.get() += 1;
                            lock.unlock(&node);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all writers joined.
        assert_eq!(unsafe { *counter.0.get() }, 8_000);
    }

    /// Reproduces the hand-over order of the running example in Fig. 1:
    /// with the fairness flush disabled, same-socket waiters are served
    /// before remote ones, and remote waiters are served in arrival order
    /// once the local ones are exhausted.
    #[test]
    fn numa_aware_handover_prefers_local_waiters() {
        let lock = Arc::new(CnaLock::<NeverFlushParams>::new());
        let order = Arc::new(Mutex::new(Vec::<usize>::new()));
        let enqueued = Arc::new(StdAtomicUsize::new(0));

        // The main thread (socket 0) takes the lock first.
        let _main_socket = SocketOverrideGuard::new(0);
        let main_node = CnaNode::new();
        // SAFETY: node pinned for the scope of this test; matched unlock below.
        unsafe { lock.lock(&main_node) };

        // Waiters enqueue one at a time: ids 1..=4 with sockets 1,0,1,0.
        let sockets = [1usize, 0, 1, 0];
        let mut handles = Vec::new();
        for (i, &socket) in sockets.iter().enumerate() {
            let id = i + 1;
            let thread_lock = Arc::clone(&lock);
            let order = Arc::clone(&order);
            let enqueued = Arc::clone(&enqueued);
            let before = lock.tail.load(Ordering::Relaxed);
            handles.push(std::thread::spawn(move || {
                let _socket = SocketOverrideGuard::new(socket);
                let node = CnaNode::new();
                enqueued.fetch_add(1, StdOrdering::Relaxed);
                // SAFETY: node pinned; matched pair.
                unsafe {
                    thread_lock.lock(&node);
                    order.lock().unwrap().push(id);
                    thread_lock.unlock(&node);
                }
            }));
            // Wait until this waiter has actually swapped itself into the
            // tail before starting the next one, fixing the queue order.
            while lock.tail.load(Ordering::Relaxed) == before {
                std::thread::yield_now();
            }
        }
        assert_eq!(enqueued.load(StdOrdering::Relaxed), 4);

        // Release: with never-flush parameters the socket-0 waiters (2, 4)
        // must run before the socket-1 waiters (1, 3).
        // SAFETY: matching unlock for the acquisition above.
        unsafe { lock.unlock(&main_node) };
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().unwrap().clone();
        assert_eq!(order, vec![2, 4, 1, 3]);
        assert!(!lock.is_contended_or_held());
    }

    /// With `AlwaysFlushParams` (keep_lock_local always false) the queue is
    /// served in strict FIFO order like MCS, regardless of sockets.
    #[test]
    fn always_flush_preserves_fifo_order() {
        let lock = Arc::new(CnaLock::<AlwaysFlushParams>::new());
        let order = Arc::new(Mutex::new(Vec::<usize>::new()));

        let _main_socket = SocketOverrideGuard::new(0);
        let main_node = CnaNode::new();
        // SAFETY: pinned node, matched unlock below.
        unsafe { lock.lock(&main_node) };

        let sockets = [1usize, 0, 1, 0];
        let mut handles = Vec::new();
        for (i, &socket) in sockets.iter().enumerate() {
            let id = i + 1;
            let thread_lock = Arc::clone(&lock);
            let order = Arc::clone(&order);
            let before = lock.tail.load(Ordering::Relaxed);
            handles.push(std::thread::spawn(move || {
                let _socket = SocketOverrideGuard::new(socket);
                let node = CnaNode::new();
                // SAFETY: pinned node; matched pair.
                unsafe {
                    thread_lock.lock(&node);
                    order.lock().unwrap().push(id);
                    thread_lock.unlock(&node);
                }
            }));
            while lock.tail.load(Ordering::Relaxed) == before {
                std::thread::yield_now();
            }
        }

        // SAFETY: matching unlock.
        unsafe { lock.unlock(&main_node) };
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().unwrap().clone();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn handover_under_socket_diversity_makes_progress() {
        // 6 threads on 3 different sockets; every thread must finish
        // (no lost wake-ups, no starvation hang) even with never-flush.
        struct RacyCounter(std::cell::UnsafeCell<u64>);
        // SAFETY(test): only accessed under the lock.
        unsafe impl Sync for RacyCounter {}
        let lock = Arc::new(CnaLock::<NeverFlushParams>::new());
        let counter = Arc::new(RacyCounter(std::cell::UnsafeCell::new(0)));
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let _socket = SocketOverrideGuard::new(t % 3);
                    let node = CnaNode::new();
                    for _ in 0..1_000 {
                        // SAFETY: as in `hammer`.
                        unsafe {
                            lock.lock(&node);
                            *counter.0.get() += 1;
                            lock.unlock(&node);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all writers joined.
        assert_eq!(unsafe { *counter.0.get() }, 6_000);
    }
}
