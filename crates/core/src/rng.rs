//! Lightweight thread-local pseudo-random number generator.
//!
//! The paper's `keep_lock_local()` draws a pseudo-random number on every
//! hand-over and keeps the lock on the current socket unless
//! `rand & THRESHOLD == 0`. The generator therefore sits on the unlock fast
//! path and must be branch-light and allocation-free; we use the same class
//! of generator the Linux kernel patch uses (a small xorshift), seeded per
//! thread from the thread id so different threads do not draw identical
//! sequences.

use std::cell::Cell;

thread_local! {
    static STATE: Cell<u64> = Cell::new(seed_from_thread());
}

fn seed_from_thread() -> u64 {
    // Mix the numeric thread id through SplitMix64 so consecutive thread ids
    // produce uncorrelated streams. Never returns zero (xorshift fixed point).
    let tid = numa_topology::current_thread_index() as u64;
    let mut z = tid.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    z | 1
}

/// Returns the next pseudo-random 64-bit value for the calling thread
/// (xorshift64).
#[inline]
pub fn pseudo_rand() -> u64 {
    STATE.with(|state| {
        let mut x = state.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        state.set(x);
        x
    })
}

/// Re-seeds the calling thread's generator (used by tests that need
/// reproducible draws).
pub fn reseed(seed: u64) {
    STATE.with(|state| state.set(seed | 1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_nonzero_values() {
        for _ in 0..1_000 {
            assert_ne!(pseudo_rand(), 0);
        }
    }

    #[test]
    fn reseed_makes_sequences_reproducible() {
        reseed(42);
        let a: Vec<u64> = (0..8).map(|_| pseudo_rand()).collect();
        reseed(42);
        let b: Vec<u64> = (0..8).map(|_| pseudo_rand()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn low_bits_hit_zero_with_roughly_expected_frequency() {
        // With mask 0xff about 1/256 of draws should be zero; check we are
        // within a loose factor of four over 100k draws.
        reseed(7);
        let draws = 100_000;
        let zeros = (0..draws).filter(|_| pseudo_rand() & 0xff == 0).count();
        let expected = draws / 256;
        assert!(zeros > expected / 4, "too few zeros: {zeros}");
        assert!(zeros < expected * 4, "too many zeros: {zeros}");
    }

    #[test]
    fn different_threads_start_from_different_seeds() {
        let here = pseudo_rand();
        let there = std::thread::spawn(pseudo_rand).join().unwrap();
        // Not a strict requirement of the algorithm, but the streams should
        // not be in lockstep.
        assert_ne!(here, there);
    }
}
