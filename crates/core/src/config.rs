//! Tunable parameters of the CNA lock.

use crate::{THRESHOLD, THRESHOLD2};

/// Configuration of a [`CnaLock`](crate::CnaLock).
///
/// The defaults reproduce the paper's settings: the lock is kept on the
/// current socket unless a pseudo-random draw ANDed with `0xffff` is zero
/// (≈ 1/65536 of hand-overs flush the secondary queue), and the §6 shuffle
/// reduction optimisation is disabled. The paper's *CNA (opt)* variant is
/// [`CnaConfig::with_shuffle_reduction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CnaConfig {
    /// Mask applied to a pseudo-random draw in `keep_lock_local()`. The
    /// secondary queue is flushed (lock handed across sockets) when
    /// `draw & keep_local_mask == 0`. `0` disables NUMA-awareness entirely
    /// (every hand-over behaves like the flush path), `u64::MAX` practically
    /// never flushes.
    pub keep_local_mask: u64,
    /// Enables the §6 shuffle reduction optimisation: when the secondary
    /// queue is empty, skip the successor search (hand over to the immediate
    /// successor) unless `draw & shuffle_mask == 0`.
    pub shuffle_reduction: bool,
    /// Mask used by the shuffle reduction draw.
    pub shuffle_mask: u64,
}

impl Default for CnaConfig {
    fn default() -> Self {
        CnaConfig {
            keep_local_mask: THRESHOLD,
            shuffle_reduction: false,
            shuffle_mask: THRESHOLD2,
        }
    }
}

impl CnaConfig {
    /// The paper's default configuration ("CNA" in the plots).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// The paper's "CNA (opt)" configuration with shuffle reduction enabled
    /// (§6, `THRESHOLD2 = 0xff`).
    pub fn with_shuffle_reduction() -> Self {
        CnaConfig {
            shuffle_reduction: true,
            ..Self::default()
        }
    }

    /// Overrides the fairness mask (the knob the paper mentions for tuning
    /// the fairness-vs-throughput trade-off).
    pub fn keep_local_mask(mut self, mask: u64) -> Self {
        self.keep_local_mask = mask;
        self
    }

    /// Overrides the shuffle-reduction mask.
    pub fn shuffle_mask(mut self, mask: u64) -> Self {
        self.shuffle_mask = mask;
        self
    }

    /// A configuration that *always* flushes the secondary queue, degrading
    /// CNA to strict FIFO hand-over (useful in tests: behaves like MCS).
    pub fn always_flush() -> Self {
        CnaConfig {
            keep_local_mask: 0,
            shuffle_reduction: false,
            shuffle_mask: THRESHOLD2,
        }
    }

    /// A configuration that (practically) never flushes the secondary queue,
    /// maximising locality at the cost of long-term fairness (useful in tests
    /// to make the NUMA-aware hand-over deterministic).
    pub fn never_flush() -> Self {
        CnaConfig {
            keep_local_mask: u64::MAX,
            shuffle_reduction: false,
            shuffle_mask: THRESHOLD2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = CnaConfig::default();
        assert_eq!(c.keep_local_mask, 0xffff);
        assert_eq!(c.shuffle_mask, 0xff);
        assert!(!c.shuffle_reduction);
        assert_eq!(CnaConfig::paper_default(), c);
    }

    #[test]
    fn opt_variant_enables_shuffle_reduction_only() {
        let c = CnaConfig::with_shuffle_reduction();
        assert!(c.shuffle_reduction);
        assert_eq!(c.keep_local_mask, 0xffff);
    }

    #[test]
    fn builder_style_overrides() {
        let c = CnaConfig::default().keep_local_mask(0xf).shuffle_mask(0x3);
        assert_eq!(c.keep_local_mask, 0xf);
        assert_eq!(c.shuffle_mask, 0x3);
    }

    #[test]
    fn extreme_configs() {
        assert_eq!(CnaConfig::always_flush().keep_local_mask, 0);
        assert_eq!(CnaConfig::never_flush().keep_local_mask, u64::MAX);
    }
}
