//! # CNA — Compact NUMA-Aware lock
//!
//! Reference Rust implementation of the lock from *"Compact NUMA-Aware
//! Locks"* (Dice & Kogan, EuroSys 2019).
//!
//! CNA is a variant of the MCS queue lock whose shared state is a **single
//! word** — a pointer to the tail of the main waiting queue — yet whose
//! hand-over policy is NUMA-aware. Waiting threads are organised in two
//! queues threaded through the waiters' own queue nodes:
//!
//! * the **main queue**, containing the lock holder and (preferentially)
//!   threads running on the lock holder's socket, and
//! * the **secondary queue**, containing threads running on other sockets,
//!   moved there by lock holders while searching for a same-socket successor.
//!
//! On release the holder scans the main queue for a waiter on its own socket
//! (moving skipped remote waiters to the secondary queue) and passes the lock
//! to it; when no local waiter exists — or occasionally, for long-term
//! fairness — the secondary queue is spliced back into the main queue and the
//! lock is passed to its head. Acquisition uses exactly one atomic
//! instruction (a swap on the tail), like MCS.
//!
//! ## Crate layout
//!
//! * [`raw::CnaLock`] / [`raw::CnaNode`] — the algorithm itself, following
//!   the paper's Figures 2–5, with the §6 *shuffle reduction* optimisation
//!   available through [`CnaConfig`].
//! * [`CnaMutex`] — a safe RAII mutex (`LockMutex<T, CnaLock>`) for client
//!   code.
//! * [`rng`] — the lightweight thread-local pseudo-random generator used by
//!   the `keep_lock_local()` fairness policy.
//!
//! ## Examples
//!
//! ```
//! use cna::CnaMutex;
//!
//! let m = CnaMutex::new(0u64);
//! std::thread::scope(|s| {
//!     for _ in 0..4 {
//!         s.spawn(|| {
//!             for _ in 0..1_000 {
//!                 *m.lock() += 1;
//!             }
//!         });
//!     }
//! });
//! assert_eq!(*m.lock(), 4_000);
//! ```
//!
//! The raw API mirrors the paper's `cna_lock`/`cna_unlock` and is what the
//! benchmark harness drives:
//!
//! ```
//! use cna::{CnaLock, CnaNode};
//! use sync_core::RawLock;
//!
//! let lock: CnaLock = CnaLock::new();
//! let node = CnaNode::default();
//! // SAFETY: the node stays on this frame, pinned, for the whole
//! // acquisition and is passed to the matching unlock.
//! unsafe {
//!     lock.lock(&node);
//!     lock.unlock(&node);
//! }
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod mutex;
pub mod raw;
pub mod rng;

pub use config::CnaConfig;
pub use mutex::CnaMutex;
pub use raw::{CnaLock, CnaNode};

/// The paper's long-term fairness threshold: the secondary queue is flushed
/// back into the main queue when `pseudo_rand() & THRESHOLD == 0`, i.e. with
/// probability 1/65536 per hand-over.
pub const THRESHOLD: u64 = 0xffff;

/// The paper's shuffle-reduction threshold (§6): when the secondary queue is
/// empty the holder skips the successor search with probability 255/256.
pub const THRESHOLD2: u64 = 0xff;
