//! Safe RAII mutexes built on the CNA lock.

use sync_core::mutex::LockMutex;

use crate::config::CnaConfig;
use crate::raw::{CnaLock, CnaLockOpt, TunableCnaLock};

/// A mutex protected by the CNA lock with the paper's default parameters.
///
/// This is the type most applications should use; it is the drop-in
/// equivalent of the paper's pthread-API library built with LiTL.
///
/// # Examples
///
/// ```
/// use cna::CnaMutex;
///
/// let m = CnaMutex::new(vec![1, 2, 3]);
/// m.lock().push(4);
/// assert_eq!(m.lock().len(), 4);
/// ```
pub type CnaMutex<T> = LockMutex<T, CnaLock>;

/// A mutex protected by the "CNA (opt)" lock (shuffle reduction enabled).
pub type CnaMutexOpt<T> = LockMutex<T, CnaLockOpt>;

/// A mutex protected by a run-time configured CNA lock.
pub type TunableCnaMutex<T> = LockMutex<T, TunableCnaLock>;

/// Builds a [`TunableCnaMutex`] with an explicit configuration.
///
/// # Examples
///
/// ```
/// use cna::{mutex::tunable_mutex, CnaConfig};
///
/// let m = tunable_mutex(CnaConfig::with_shuffle_reduction(), 0u32);
/// *m.lock() += 1;
/// assert_eq!(*m.lock(), 1);
/// ```
pub fn tunable_mutex<T>(config: CnaConfig, value: T) -> TunableCnaMutex<T> {
    LockMutex::with_raw(TunableCnaLock::with_config(config), value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cna_mutex_basic() {
        let m = CnaMutex::new(String::new());
        m.lock().push_str("cna");
        assert_eq!(&*m.lock(), "cna");
        assert_eq!(m.algorithm(), "CNA");
    }

    #[test]
    fn opt_mutex_reports_its_name() {
        let m = CnaMutexOpt::new(0u8);
        assert_eq!(m.algorithm(), "CNA (opt)");
    }

    #[test]
    fn tunable_mutex_uses_configuration() {
        let m = tunable_mutex(CnaConfig::never_flush(), 0u64);
        assert_eq!(m.raw().config(), CnaConfig::never_flush());
        *m.lock() += 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn contended_increments_are_not_lost() {
        const THREADS: usize = 4;
        const ITERS: u64 = 2_500;
        let m = Arc::new(CnaMutex::new(0u64));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let _socket = numa_topology::SocketOverrideGuard::new(t % 2);
                    for _ in 0..ITERS {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), THREADS as u64 * ITERS);
    }

    #[test]
    fn nested_distinct_mutexes() {
        let outer = CnaMutex::new(1u32);
        let inner = CnaMutex::new(2u32);
        let a = outer.lock();
        let b = inner.lock();
        assert_eq!(*a + *b, 3);
    }
}
