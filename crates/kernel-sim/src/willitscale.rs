//! The four will-it-scale benchmarks of Figure 15, driving the VFS
//! substrates of this crate, plus the lockstat report behind Table 1.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sync_core::raw::RawLock;
use sync_core::CachePadded;

use crate::dentry::DentryDir;
use crate::fdtable::{File, FilesStruct};
use crate::filelock::FileLockContext;
use crate::lockstat::{LockStatRegistry, LockStatReport};

/// The four benchmarks (threads mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WisBenchmark {
    /// fcntl lock/unlock, separate file per thread.
    Lock1,
    /// fcntl lock/unlock, one shared file.
    Lock2,
    /// open/close separate files in the same directory.
    Open1,
    /// open/close separate files in separate directories.
    Open2,
}

impl WisBenchmark {
    /// All benchmarks in Figure 15 order.
    pub fn all() -> [WisBenchmark; 4] {
        [
            WisBenchmark::Lock1,
            WisBenchmark::Lock2,
            WisBenchmark::Open1,
            WisBenchmark::Open2,
        ]
    }

    /// The upstream benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            WisBenchmark::Lock1 => "lock1_threads",
            WisBenchmark::Lock2 => "lock2_threads",
            WisBenchmark::Open1 => "open1_threads",
            WisBenchmark::Open2 => "open2_threads",
        }
    }
}

/// Configuration of a will-it-scale run.
#[derive(Debug, Clone)]
pub struct WisConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Wall-clock duration.
    pub duration: Duration,
}

impl Default for WisConfig {
    fn default() -> Self {
        WisConfig {
            threads: 2,
            duration: Duration::from_millis(50),
        }
    }
}

/// Result of a will-it-scale run.
#[derive(Debug, Clone)]
pub struct WisReport {
    /// The benchmark that ran.
    pub benchmark: &'static str,
    /// Lock algorithm behind the kernel spin locks.
    pub algorithm: String,
    /// Iterations per thread.
    pub ops_per_thread: Vec<u64>,
    /// Wall-clock interval.
    pub elapsed: Duration,
    /// Lockstat report (feeds Table 1).
    pub lockstat: LockStatReport,
}

impl WisReport {
    /// Total iterations.
    pub fn total_ops(&self) -> u64 {
        self.ops_per_thread.iter().sum()
    }

    /// Aggregate throughput in iterations per millisecond.
    pub fn throughput_ops_per_ms(&self) -> f64 {
        self.total_ops() as f64 / self.elapsed.as_millis().max(1) as f64
    }
}

/// Runs one will-it-scale benchmark with every kernel spin lock implemented
/// by lock type `L` (the stock or CNA qspinlock in the paper's figures).
pub fn run_will_it_scale<L>(benchmark: WisBenchmark, config: &WisConfig) -> WisReport
where
    L: RawLock + 'static,
{
    let stats = Arc::new(LockStatRegistry::new());
    let files: Arc<FilesStruct<L>> = Arc::new(FilesStruct::new(1 << 16, stats.clone()));
    let shared_flc: Arc<FileLockContext<L>> = Arc::new(FileLockContext::new(stats.clone()));
    let shared_dir: Arc<DentryDir<L>> = Arc::new(DentryDir::new(stats.clone()));

    let stop = Arc::new(AtomicBool::new(false));
    let counts: Arc<Vec<CachePadded<AtomicU64>>> = Arc::new(
        (0..config.threads)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect(),
    );

    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..config.threads {
            let files = Arc::clone(&files);
            let shared_flc = Arc::clone(&shared_flc);
            let shared_dir = Arc::clone(&shared_dir);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let counts = Arc::clone(&counts);
            scope.spawn(move || {
                let _socket = numa_topology::SocketOverrideGuard::new(t % 2);
                // Per-thread private structures (the "separate file /
                // separate directory" halves of the benchmarks).
                let private_flc: FileLockContext<L> = FileLockContext::new(stats.clone());
                let private_dir: DentryDir<L> = DentryDir::new(stats.clone());
                let owner = t as u64;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match benchmark {
                        WisBenchmark::Lock1 => {
                            // Shared fd table (the file was opened once per
                            // thread in the real benchmark; the hot path is
                            // the fcntl on the shared files_struct) + a
                            // per-thread lock context.
                            let fd = files
                                .alloc_fd(Arc::new(File { inode: owner }))
                                .expect("fd available");
                            let _ = files.get(fd);
                            private_flc.posix_lock(owner, 0, 10, true);
                            private_flc.posix_unlock(owner, 0, 10);
                            files.close_fd(fd).expect("fd open");
                        }
                        WisBenchmark::Lock2 => {
                            // All threads lock the same file: the shared
                            // file_lock_context is hot. Use disjoint ranges so
                            // requests succeed (as the benchmark does).
                            let base = owner * 100;
                            shared_flc.posix_lock(owner, base, base + 10, true);
                            shared_flc.posix_unlock(owner, base, base + 10);
                        }
                        WisBenchmark::Open1 => {
                            // open/close in one shared directory: fd table +
                            // shared parent dentry lockref.
                            let fd = files
                                .alloc_fd(Arc::new(File { inode: owner }))
                                .expect("fd available");
                            let dentry = shared_dir.d_alloc(&format!("t{t}-{ops}"));
                            shared_dir.dput(&dentry);
                            files.close_fd(fd).expect("fd open");
                        }
                        WisBenchmark::Open2 => {
                            // open/close in per-thread directories: only the
                            // fd table is shared.
                            let fd = files
                                .alloc_fd(Arc::new(File { inode: owner }))
                                .expect("fd available");
                            let dentry = private_dir.d_alloc(&format!("t{t}-{ops}"));
                            private_dir.dput(&dentry);
                            files.close_fd(fd).expect("fd open");
                        }
                    }
                    ops += 1;
                    if ops.is_multiple_of(64) {
                        counts[t].store(ops, Ordering::Relaxed);
                    }
                }
                counts[t].store(ops, Ordering::Relaxed);
            });
        }
        std::thread::sleep(config.duration);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed();

    WisReport {
        benchmark: benchmark.name(),
        algorithm: L::NAME.to_string(),
        ops_per_thread: counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        elapsed,
        lockstat: stats.report(),
    }
}

/// Registry-driven counterpart of [`run_will_it_scale`]: the spin-lock
/// algorithm behind every kernel substrate is chosen by
/// [`LockId`](registry::LockId) at runtime.
///
/// The VFS substrates (`FilesStruct<L>`, `FileLockContext<L>`,
/// `DentryDir<L>`) construct their locks internally, so the selection rides
/// on [`registry::AmbientLock`] — every lock they create inside the scope
/// dispatches to the registered algorithm of `id`.
pub fn run_will_it_scale_dyn(
    id: registry::LockId,
    benchmark: WisBenchmark,
    config: &WisConfig,
) -> WisReport {
    let mut report = registry::with_ambient(id, || {
        run_will_it_scale::<registry::AmbientLock>(benchmark, config)
    });
    report.algorithm = id.name().to_string();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use qspinlock::{CnaQSpinLock, StockQSpinLock};

    fn cfg() -> WisConfig {
        WisConfig {
            threads: 2,
            duration: Duration::from_millis(25),
        }
    }

    #[test]
    fn every_benchmark_completes_iterations() {
        for bench in WisBenchmark::all() {
            let report = run_will_it_scale::<StockQSpinLock>(bench, &cfg());
            assert!(report.total_ops() > 0, "{} made no progress", bench.name());
            assert_eq!(report.algorithm, "stock");
        }
    }

    #[test]
    fn every_benchmark_completes_iterations_on_a_dyn_selected_lock() {
        for (id, bench) in [
            (registry::LockId::QSpinCna, WisBenchmark::Lock1),
            (registry::LockId::Mcs, WisBenchmark::Open2),
        ] {
            let report = run_will_it_scale_dyn(id, bench, &cfg());
            assert_eq!(report.algorithm, id.name());
            assert!(
                report.total_ops() > 0,
                "{} on {} made no progress",
                bench.name(),
                id
            );
        }
    }

    #[test]
    fn open1_contends_on_fd_table_and_lockref() {
        let report = run_will_it_scale::<CnaQSpinLock>(WisBenchmark::Open1, &cfg());
        let locks: std::collections::HashSet<&str> = report
            .lockstat
            .rows
            .iter()
            .map(|r| r.lock.as_str())
            .collect();
        assert!(locks.contains("files_struct.file_lock"));
        assert!(locks.contains("lockref.lock"));
    }

    #[test]
    fn lock2_touches_the_flc_lock_via_posix_lock_inode() {
        let report = run_will_it_scale::<StockQSpinLock>(WisBenchmark::Lock2, &cfg());
        assert!(report
            .lockstat
            .rows
            .iter()
            .any(|r| r.lock == "file_lock_context.flc_lock" && r.call_site == "posix_lock_inode"));
    }

    #[test]
    fn table1_call_sites_appear_for_lock1() {
        let report = run_will_it_scale::<StockQSpinLock>(WisBenchmark::Lock1, &cfg());
        let sites: std::collections::HashSet<(&str, &str)> = report
            .lockstat
            .rows
            .iter()
            .map(|r| (r.lock.as_str(), r.call_site.as_str()))
            .collect();
        assert!(sites.contains(&("files_struct.file_lock", "__alloc_fd")));
        assert!(sites.contains(&("files_struct.file_lock", "fcntl_setlk")));
    }
}
