//! Kernel-subsystem substrates and kernel benchmarks (§7.2 of the paper).
//!
//! The paper evaluates its qspinlock change with `locktorture` and with four
//! `will-it-scale` micro-benchmarks whose hot spin locks live in the VFS
//! layer (Table 1). This crate rebuilds those substrates in user space on
//! top of the 4-byte [`qspinlock`] (stock or CNA slow path):
//!
//! * [`fdtable`] — a per-process file-descriptor table guarded by
//!   `files_struct.file_lock` (`__alloc_fd` / `__close_fd`).
//! * [`filelock`] — POSIX record locks guarded by
//!   `file_lock_context.flc_lock` (`posix_lock_inode`).
//! * [`dentry`] — a directory-entry cache whose entries carry a `lockref`
//!   (spinlock + refcount in one word pair), exercised by `dget`/`dput`.
//! * [`lockstat`] — a lockstat-style contention registry that produces the
//!   per-lock / per-call-site report of Table 1.
//! * [`locktorture`] — the lock torture loop of Figures 13/14, with and
//!   without the lockstat-style shared-data updates.
//! * [`willitscale`] — the four benchmarks of Figure 15 driving the
//!   substrates above.

#![warn(missing_docs)]

pub mod dentry;
pub mod fdtable;
pub mod filelock;
pub mod lockstat;
pub mod locktorture;
pub mod willitscale;

pub use lockstat::{LockStatRegistry, LockStatReport};
pub use locktorture::{run_locktorture, run_locktorture_dyn, LockTortureConfig, LockTortureReport};
pub use willitscale::{
    run_will_it_scale, run_will_it_scale_dyn, WisBenchmark, WisConfig, WisReport,
};
