//! The per-process file-descriptor table (`files_struct`).
//!
//! `struct files_struct` embeds a spin lock (`file_lock`) that serialises
//! descriptor allocation (`__alloc_fd`) and release (`__close_fd`). It is the
//! contention point of the `lock1`, `open1` and `open2` will-it-scale
//! benchmarks (Table 1), because all threads of a process share one table.

use std::sync::Arc;

use sync_core::mutex::LockMutex;
use sync_core::raw::RawLock;

use crate::lockstat::LockStatRegistry;

/// An open file description (the object an fd refers to).
#[derive(Debug, PartialEq, Eq)]
pub struct File {
    /// Inode number of the opened file.
    pub inode: u64,
}

#[derive(Debug, Default)]
struct FdTableInner {
    files: Vec<Option<Arc<File>>>,
    next_fd: usize,
    open_count: usize,
}

/// Errors returned by the fd table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdError {
    /// The descriptor is not open.
    BadFd,
    /// The table reached its configured maximum size.
    TooManyOpenFiles,
}

/// A `files_struct`: the shared fd table of one process.
pub struct FilesStruct<L: RawLock>
where
    L::Node: 'static,
{
    table: LockMutex<FdTableInner, L>,
    max_fds: usize,
    stats: Arc<LockStatRegistry>,
}

impl<L: RawLock> FilesStruct<L>
where
    L::Node: 'static,
{
    /// Creates an fd table bounded at `max_fds` descriptors, reporting
    /// contention into `stats`.
    pub fn new(max_fds: usize, stats: Arc<LockStatRegistry>) -> Self {
        FilesStruct {
            table: LockMutex::new(FdTableInner::default()),
            max_fds: max_fds.max(1),
            stats,
        }
    }

    /// `__alloc_fd`: installs `file` at the lowest free descriptor.
    pub fn alloc_fd(&self, file: Arc<File>) -> Result<usize, FdError> {
        let site = self.stats.site("files_struct.file_lock", "__alloc_fd");
        let start = std::time::Instant::now();
        let mut guard = self.table.lock();
        site.record(
            start.elapsed().as_nanos() > 200,
            start.elapsed().as_nanos() as u64,
        );
        // Lowest-free-descriptor search, as the kernel does.
        let fd = (guard.next_fd..guard.files.len())
            .find(|&fd| guard.files[fd].is_none())
            .unwrap_or(guard.files.len());
        if fd >= self.max_fds {
            return Err(FdError::TooManyOpenFiles);
        }
        if fd == guard.files.len() {
            guard.files.push(Some(file));
        } else {
            guard.files[fd] = Some(file);
        }
        guard.next_fd = fd + 1;
        guard.open_count += 1;
        Ok(fd)
    }

    /// `__close_fd`: releases descriptor `fd`.
    pub fn close_fd(&self, fd: usize) -> Result<Arc<File>, FdError> {
        let site = self.stats.site("files_struct.file_lock", "__close_fd");
        let start = std::time::Instant::now();
        let mut guard = self.table.lock();
        site.record(
            start.elapsed().as_nanos() > 200,
            start.elapsed().as_nanos() as u64,
        );
        let slot = guard.files.get_mut(fd).ok_or(FdError::BadFd)?;
        let file = slot.take().ok_or(FdError::BadFd)?;
        guard.next_fd = guard.next_fd.min(fd);
        guard.open_count -= 1;
        Ok(file)
    }

    /// Looks up the file behind `fd` (the `fcntl` fast path takes the same
    /// lock in the kernel when the fd table may be resized concurrently).
    pub fn get(&self, fd: usize) -> Result<Arc<File>, FdError> {
        let site = self.stats.site("files_struct.file_lock", "fcntl_setlk");
        let start = std::time::Instant::now();
        let guard = self.table.lock();
        site.record(
            start.elapsed().as_nanos() > 200,
            start.elapsed().as_nanos() as u64,
        );
        guard
            .files
            .get(fd)
            .and_then(|f| f.clone())
            .ok_or(FdError::BadFd)
    }

    /// Number of currently open descriptors.
    pub fn open_count(&self) -> usize {
        self.table.lock().open_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locks::McsLock;
    use qspinlock::CnaQSpinLock;

    fn registry() -> Arc<LockStatRegistry> {
        Arc::new(LockStatRegistry::new())
    }

    #[test]
    fn alloc_reuses_the_lowest_free_descriptor() {
        let files: FilesStruct<McsLock> = FilesStruct::new(64, registry());
        let fd0 = files.alloc_fd(Arc::new(File { inode: 1 })).unwrap();
        let fd1 = files.alloc_fd(Arc::new(File { inode: 2 })).unwrap();
        let fd2 = files.alloc_fd(Arc::new(File { inode: 3 })).unwrap();
        assert_eq!((fd0, fd1, fd2), (0, 1, 2));
        files.close_fd(fd1).unwrap();
        let fd = files.alloc_fd(Arc::new(File { inode: 4 })).unwrap();
        assert_eq!(fd, 1, "the lowest free fd is reused");
        assert_eq!(files.open_count(), 3);
    }

    #[test]
    fn close_and_get_validate_descriptors() {
        let files: FilesStruct<McsLock> = FilesStruct::new(4, registry());
        assert_eq!(files.close_fd(0), Err(FdError::BadFd));
        let fd = files.alloc_fd(Arc::new(File { inode: 9 })).unwrap();
        assert_eq!(files.get(fd).unwrap().inode, 9);
        files.close_fd(fd).unwrap();
        assert_eq!(files.get(fd), Err(FdError::BadFd));
    }

    #[test]
    fn table_size_is_bounded() {
        let files: FilesStruct<McsLock> = FilesStruct::new(2, registry());
        files.alloc_fd(Arc::new(File { inode: 1 })).unwrap();
        files.alloc_fd(Arc::new(File { inode: 2 })).unwrap();
        assert_eq!(
            files.alloc_fd(Arc::new(File { inode: 3 })),
            Err(FdError::TooManyOpenFiles)
        );
    }

    #[test]
    fn concurrent_open_close_on_the_qspinlock() {
        let stats = registry();
        let files: Arc<FilesStruct<CnaQSpinLock>> = Arc::new(FilesStruct::new(1024, stats.clone()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let files = Arc::clone(&files);
                s.spawn(move || {
                    for i in 0..500u64 {
                        let fd = files
                            .alloc_fd(Arc::new(File {
                                inode: t * 1_000 + i,
                            }))
                            .unwrap();
                        files.close_fd(fd).unwrap();
                    }
                });
            }
        });
        assert_eq!(files.open_count(), 0);
        let report = stats.report();
        let total_file_lock_acquisitions: u64 = report
            .rows
            .iter()
            .filter(|r| r.lock == "files_struct.file_lock")
            .map(|r| r.acquisitions)
            .sum();
        assert!(
            total_file_lock_acquisitions >= 4_000,
            "alloc + close must each be recorded ({total_file_lock_acquisitions})"
        );
    }
}
