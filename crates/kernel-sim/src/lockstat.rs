//! A lockstat-style contention registry (Table 1).
//!
//! The kernel's `lockstat` infrastructure records, per lock class and call
//! site, how often a lock was taken and how often the acquirer had to wait.
//! The paper uses it (a) to add shared-data writes to locktorture's critical
//! sections and (b) to identify which spin locks the will-it-scale
//! benchmarks contend on (Table 1). This module provides the same bookkeeping
//! for the user-space substrates.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-(lock, call-site) counters.
#[derive(Debug, Default)]
struct SiteCounters {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait_ns: AtomicU64,
}

/// A registry of contention events keyed by lock class and call site.
#[derive(Debug, Default)]
pub struct LockStatRegistry {
    sites: Mutex<BTreeMap<(String, String), std::sync::Arc<SiteCountersHandle>>>,
}

/// Shared handle to one call site's counters.
#[derive(Debug, Default)]
pub struct SiteCountersHandle {
    counters: SiteCounters,
}

impl SiteCountersHandle {
    /// Records one acquisition; `contended` says whether the caller had to
    /// wait, and `wait_ns` for how long.
    pub fn record(&self, contended: bool, wait_ns: u64) {
        self.counters.acquisitions.fetch_add(1, Ordering::Relaxed);
        if contended {
            self.counters.contended.fetch_add(1, Ordering::Relaxed);
            self.counters.wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        }
    }
}

/// One row of the lockstat report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockStatRow {
    /// Lock class (e.g. `files_struct.file_lock`).
    pub lock: String,
    /// Call site (e.g. `__alloc_fd`).
    pub call_site: String,
    /// Total acquisitions through this call site.
    pub acquisitions: u64,
    /// Acquisitions that found the lock held.
    pub contended: u64,
    /// Total time spent waiting, nanoseconds.
    pub wait_ns: u64,
}

/// A complete lockstat report.
#[derive(Debug, Clone, Default)]
pub struct LockStatReport {
    /// Rows sorted by contention count, descending.
    pub rows: Vec<LockStatRow>,
}

impl LockStatReport {
    /// Rows whose contention exceeds `threshold` acquisitions — the
    /// "contended spin locks" column of Table 1.
    pub fn contended_locks(&self, threshold: u64) -> Vec<&LockStatRow> {
        self.rows
            .iter()
            .filter(|r| r.contended > threshold)
            .collect()
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "lock                                    call site                 acquisitions   contended\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:<40}{:<28}{:>10}{:>12}\n",
                row.lock, row.call_site, row.acquisitions, row.contended
            ));
        }
        out
    }
}

impl LockStatRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering if needed) the counters for a lock/call-site
    /// pair. Handles are cheap to clone and lock-free to update.
    pub fn site(&self, lock: &str, call_site: &str) -> std::sync::Arc<SiteCountersHandle> {
        let mut sites = self.sites.lock().expect("lockstat registry poisoned");
        sites
            .entry((lock.to_string(), call_site.to_string()))
            .or_default()
            .clone()
    }

    /// Produces the report, sorted by contention.
    pub fn report(&self) -> LockStatReport {
        let sites = self.sites.lock().expect("lockstat registry poisoned");
        let mut rows: Vec<LockStatRow> = sites
            .iter()
            .map(|((lock, call_site), handle)| LockStatRow {
                lock: lock.clone(),
                call_site: call_site.clone(),
                acquisitions: handle.counters.acquisitions.load(Ordering::Relaxed),
                contended: handle.counters.contended.load(Ordering::Relaxed),
                wait_ns: handle.counters.wait_ns.load(Ordering::Relaxed),
            })
            .collect();
        rows.sort_by_key(|row| std::cmp::Reverse(row.contended));
        LockStatReport { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_by_contention() {
        let reg = LockStatRegistry::new();
        let alloc_fd = reg.site("files_struct.file_lock", "__alloc_fd");
        let dput = reg.site("lockref.lock", "dput");
        for _ in 0..100 {
            alloc_fd.record(true, 50);
        }
        for _ in 0..10 {
            dput.record(false, 0);
        }
        dput.record(true, 20);
        let report = reg.report();
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].call_site, "__alloc_fd");
        assert_eq!(report.rows[0].contended, 100);
        assert_eq!(report.rows[1].acquisitions, 11);
        assert_eq!(report.contended_locks(50).len(), 1);
        assert!(report.render().contains("__alloc_fd"));
    }

    #[test]
    fn same_site_returns_the_same_handle() {
        let reg = LockStatRegistry::new();
        let a = reg.site("l", "s");
        let b = reg.site("l", "s");
        a.record(true, 5);
        b.record(true, 5);
        assert_eq!(reg.report().rows[0].contended, 2);
    }
}
