//! The locktorture benchmark (Figures 13 and 14).
//!
//! `locktorture` creates a set of kernel threads that repeatedly acquire and
//! release a lock, with occasional short delays inside the critical section
//! ("to emulate likely code") and occasional long delays ("to force massive
//! contention"). With `lockstat` enabled the kernel additionally updates
//! shared bookkeeping (e.g. the CPU that last acquired each lock class) after
//! every acquisition, which adds shared-data accesses to the otherwise
//! data-free critical section — the paper uses this to approximate real
//! critical sections.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sync_core::raw::RawLock;
use sync_core::CachePadded;

/// Configuration of a locktorture run.
#[derive(Debug, Clone)]
pub struct LockTortureConfig {
    /// Number of torture writer threads.
    pub threads: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Emulates compiling the kernel with `lockstat` enabled: update shared
    /// statistics inside every critical section.
    pub lockstat: bool,
}

impl Default for LockTortureConfig {
    fn default() -> Self {
        LockTortureConfig {
            threads: 2,
            duration: Duration::from_millis(50),
            lockstat: false,
        }
    }
}

/// Result of a locktorture run.
#[derive(Debug, Clone)]
pub struct LockTortureReport {
    /// Lock algorithm exercised.
    pub algorithm: String,
    /// Lock operations per thread.
    pub ops_per_thread: Vec<u64>,
    /// Wall-clock interval.
    pub elapsed: Duration,
    /// Whether the lockstat-style shared updates were enabled.
    pub lockstat: bool,
}

impl LockTortureReport {
    /// Total completed lock operations.
    pub fn total_ops(&self) -> u64 {
        self.ops_per_thread.iter().sum()
    }

    /// Aggregate throughput in operations per millisecond.
    pub fn throughput_ops_per_ms(&self) -> f64 {
        self.total_ops() as f64 / self.elapsed.as_millis().max(1) as f64
    }
}

/// Shared state mimicking lockstat's per-class bookkeeping.
struct TortureShared {
    last_cpu: u64,
    acquisitions: u64,
    max_streak: u64,
    current_streak: u64,
}

/// Runs locktorture over lock type `L` (the qspinlock with the stock or CNA
/// slow path in the figures).
pub fn run_locktorture<L>(config: &LockTortureConfig) -> LockTortureReport
where
    L: RawLock + 'static,
{
    struct Protected(std::cell::UnsafeCell<TortureShared>);
    // SAFETY: only touched while the torture lock is held.
    unsafe impl Sync for Protected {}

    let lock = Arc::new(L::default());
    let shared = Arc::new(Protected(std::cell::UnsafeCell::new(TortureShared {
        last_cpu: 0,
        acquisitions: 0,
        max_streak: 0,
        current_streak: 0,
    })));
    let stop = Arc::new(AtomicBool::new(false));
    let counts: Arc<Vec<CachePadded<AtomicU64>>> = Arc::new(
        (0..config.threads)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect(),
    );

    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..config.threads {
            let lock = Arc::clone(&lock);
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let counts = Arc::clone(&counts);
            let cfg = config.clone();
            scope.spawn(move || {
                let _socket = numa_topology::SocketOverrideGuard::new(t % 2);
                let mut rng = SmallRng::seed_from_u64(0x7047 + t as u64);
                let node = L::Node::default();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // SAFETY: pinned node, matched pair; shared state only
                    // touched under the lock.
                    unsafe {
                        lock.lock(&node);
                        // Occasional short delay (1/200) and long delay
                        // (1/1000), mirroring locktorture's torture_spin_lock
                        // write delays.
                        let draw: u32 = rng.gen_range(0..1_000);
                        if draw < 1 {
                            busy_ns(30_000, &mut rng);
                        } else if draw < 6 {
                            busy_ns(2_000, &mut rng);
                        }
                        if cfg.lockstat {
                            let s = &mut *shared.0.get();
                            s.acquisitions += 1;
                            if s.last_cpu == t as u64 {
                                s.current_streak += 1;
                                s.max_streak = s.max_streak.max(s.current_streak);
                            } else {
                                s.current_streak = 1;
                            }
                            s.last_cpu = t as u64;
                        }
                        lock.unlock(&node);
                    }
                    // Short pause between acquisitions ("to emulate likely
                    // code" outside the lock).
                    busy_ns(200, &mut rng);
                    ops += 1;
                    if ops.is_multiple_of(64) {
                        counts[t].store(ops, Ordering::Relaxed);
                    }
                }
                counts[t].store(ops, Ordering::Relaxed);
            });
        }
        std::thread::sleep(config.duration);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed();

    // SAFETY: all workers joined.
    let total_shared = unsafe { (*shared.0.get()).acquisitions };
    let total_ops: u64 = counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    if config.lockstat {
        assert_eq!(
            total_shared, total_ops,
            "lockstat bookkeeping must observe every acquisition exactly once"
        );
    }

    LockTortureReport {
        algorithm: L::NAME.to_string(),
        ops_per_thread: counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        elapsed,
        lockstat: config.lockstat,
    }
}

/// Registry-driven counterpart of [`run_locktorture`]: the lock algorithm is
/// chosen by [`LockId`](registry::LockId) at runtime.
///
/// The torture loop is instantiated once with [`registry::AmbientLock`] —
/// the LiTL-style process-wide selection — so every registered algorithm
/// shares one compiled loop and dispatches per acquisition through the
/// type-erased adapter.
pub fn run_locktorture_dyn(id: registry::LockId, config: &LockTortureConfig) -> LockTortureReport {
    let mut report =
        registry::with_ambient(id, || run_locktorture::<registry::AmbientLock>(config));
    report.algorithm = id.name().to_string();
    report
}

fn busy_ns(ns: u64, rng: &mut SmallRng) {
    // A rough calibration-free busy wait: a handful of RNG steps per ~25ns.
    let iters = ns / 25 + 1;
    let mut acc = 0u64;
    for _ in 0..iters {
        acc = acc.wrapping_add(rng.gen::<u64>());
    }
    std::hint::black_box(acc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qspinlock::{CnaQSpinLock, StockQSpinLock};

    #[test]
    fn locktorture_counts_operations_stock() {
        let report = run_locktorture::<StockQSpinLock>(&LockTortureConfig {
            threads: 2,
            duration: Duration::from_millis(30),
            lockstat: false,
        });
        assert_eq!(report.algorithm, "stock");
        assert!(report.total_ops() > 0);
        assert!(!report.lockstat);
    }

    #[test]
    fn locktorture_dyn_runs_any_registered_algorithm() {
        let report = run_locktorture_dyn(
            registry::LockId::Cna,
            &LockTortureConfig {
                threads: 2,
                duration: Duration::from_millis(25),
                lockstat: true,
            },
        );
        assert_eq!(report.algorithm, "cna");
        assert!(report.total_ops() > 0);
    }

    #[test]
    fn locktorture_with_lockstat_keeps_shared_state_consistent() {
        let report = run_locktorture::<CnaQSpinLock>(&LockTortureConfig {
            threads: 3,
            duration: Duration::from_millis(30),
            lockstat: true,
        });
        assert_eq!(report.algorithm, "CNA");
        assert!(report.total_ops() > 0);
        assert!(report.lockstat);
        assert!(report.throughput_ops_per_ms() > 0.0);
    }
}
