//! POSIX record locks (`file_lock_context` / `posix_lock_inode`).
//!
//! Every inode with record locks carries a `file_lock_context` whose
//! `flc_lock` spin lock serialises lock/unlock requests. When all threads
//! lock the *same* file (`lock2_threads`), this is the hot spin lock of
//! Table 1.

use std::sync::Arc;

use sync_core::mutex::LockMutex;
use sync_core::raw::RawLock;

use crate::lockstat::LockStatRegistry;

/// A byte-range record lock.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PosixLock {
    owner: u64,
    start: u64,
    end: u64,
    exclusive: bool,
}

impl PosixLock {
    fn overlaps(&self, start: u64, end: u64) -> bool {
        self.start <= end && start <= self.end
    }
}

/// Outcome of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was granted (or merged with an existing one by the same
    /// owner).
    Granted,
    /// A conflicting lock held by another owner blocks the request
    /// (`F_SETLK` returns `EAGAIN`).
    Conflict,
}

/// The per-inode lock context.
pub struct FileLockContext<L: RawLock>
where
    L::Node: 'static,
{
    locks: LockMutex<Vec<PosixLock>, L>,
    stats: Arc<LockStatRegistry>,
}

impl<L: RawLock> FileLockContext<L>
where
    L::Node: 'static,
{
    /// Creates an empty lock context reporting contention into `stats`.
    pub fn new(stats: Arc<LockStatRegistry>) -> Self {
        FileLockContext {
            locks: LockMutex::new(Vec::new()),
            stats,
        }
    }

    /// `posix_lock_inode` with `F_SETLK`: tries to acquire a record lock for
    /// `owner` over `[start, end]`.
    pub fn posix_lock(&self, owner: u64, start: u64, end: u64, exclusive: bool) -> LockOutcome {
        let site = self
            .stats
            .site("file_lock_context.flc_lock", "posix_lock_inode");
        let t0 = std::time::Instant::now();
        let mut guard = self.locks.lock();
        site.record(
            t0.elapsed().as_nanos() > 200,
            t0.elapsed().as_nanos() as u64,
        );
        let conflict = guard
            .iter()
            .any(|l| l.owner != owner && l.overlaps(start, end) && (l.exclusive || exclusive));
        if conflict {
            return LockOutcome::Conflict;
        }
        // Replace any existing lock by the same owner over this range.
        guard.retain(|l| !(l.owner == owner && l.overlaps(start, end)));
        guard.push(PosixLock {
            owner,
            start,
            end,
            exclusive,
        });
        LockOutcome::Granted
    }

    /// `posix_lock_inode` with `F_UNLCK`: drops `owner`'s locks overlapping
    /// `[start, end]`.
    pub fn posix_unlock(&self, owner: u64, start: u64, end: u64) {
        let site = self
            .stats
            .site("file_lock_context.flc_lock", "posix_lock_inode");
        let t0 = std::time::Instant::now();
        let mut guard = self.locks.lock();
        site.record(
            t0.elapsed().as_nanos() > 200,
            t0.elapsed().as_nanos() as u64,
        );
        guard.retain(|l| !(l.owner == owner && l.overlaps(start, end)));
    }

    /// Number of record locks currently held.
    pub fn held_locks(&self) -> usize {
        self.locks.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locks::McsLock;
    use qspinlock::StockQSpinLock;

    fn ctx<L: RawLock>() -> FileLockContext<L>
    where
        L::Node: 'static,
    {
        FileLockContext::new(Arc::new(LockStatRegistry::new()))
    }

    #[test]
    fn exclusive_locks_conflict_between_owners() {
        let c: FileLockContext<McsLock> = ctx();
        assert_eq!(c.posix_lock(1, 0, 100, true), LockOutcome::Granted);
        assert_eq!(c.posix_lock(2, 50, 60, true), LockOutcome::Conflict);
        assert_eq!(c.posix_lock(2, 101, 200, true), LockOutcome::Granted);
        assert_eq!(c.held_locks(), 2);
    }

    #[test]
    fn shared_locks_coexist_but_block_writers() {
        let c: FileLockContext<McsLock> = ctx();
        assert_eq!(c.posix_lock(1, 0, 10, false), LockOutcome::Granted);
        assert_eq!(c.posix_lock(2, 0, 10, false), LockOutcome::Granted);
        assert_eq!(c.posix_lock(3, 5, 6, true), LockOutcome::Conflict);
    }

    #[test]
    fn unlock_releases_only_the_owners_range() {
        let c: FileLockContext<McsLock> = ctx();
        c.posix_lock(1, 0, 10, true);
        c.posix_lock(1, 20, 30, true);
        c.posix_unlock(1, 0, 10);
        assert_eq!(c.held_locks(), 1);
        assert_eq!(c.posix_lock(2, 0, 10, true), LockOutcome::Granted);
    }

    #[test]
    fn relock_by_same_owner_replaces_the_lock() {
        let c: FileLockContext<McsLock> = ctx();
        assert_eq!(c.posix_lock(1, 0, 10, true), LockOutcome::Granted);
        assert_eq!(c.posix_lock(1, 0, 10, true), LockOutcome::Granted);
        assert_eq!(c.held_locks(), 1);
    }

    #[test]
    fn lock_unlock_cycle_under_contention() {
        let c: Arc<FileLockContext<StockQSpinLock>> = Arc::new(ctx());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..500 {
                        // Each owner uses its own disjoint range, like
                        // lock2_threads does.
                        let start = t * 1_000;
                        assert_eq!(
                            c.posix_lock(t, start, start + 10, true),
                            LockOutcome::Granted
                        );
                        c.posix_unlock(t, start, start + 10);
                    }
                });
            }
        });
        assert_eq!(c.held_locks(), 0);
    }
}
