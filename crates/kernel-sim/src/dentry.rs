//! Directory entries with `lockref`-protected reference counts.
//!
//! The kernel's `lockref` packs a spin lock and a reference count; `dget`,
//! `dput`, `d_alloc` and the lockref fast paths all take the parent dentry's
//! lock when many files are created/destroyed in one directory — the second
//! contention point of `open1_threads` (Table 1).

use std::collections::HashMap;
use std::sync::Arc;

use sync_core::mutex::LockMutex;
use sync_core::raw::RawLock;

use crate::lockstat::LockStatRegistry;

/// A `lockref`: spin lock + reference count.
pub struct LockRef<L: RawLock>
where
    L::Node: 'static,
{
    count: LockMutex<i64, L>,
    stats: Arc<LockStatRegistry>,
    name: &'static str,
}

impl<L: RawLock> LockRef<L>
where
    L::Node: 'static,
{
    /// Creates a lockref with an initial count.
    pub fn new(initial: i64, name: &'static str, stats: Arc<LockStatRegistry>) -> Self {
        LockRef {
            count: LockMutex::new(initial),
            stats,
            name,
        }
    }

    fn record(&self, call_site: &str, start: std::time::Instant) {
        self.stats.site(self.name, call_site).record(
            start.elapsed().as_nanos() > 200,
            start.elapsed().as_nanos() as u64,
        );
    }

    /// `lockref_get`: unconditionally takes a reference.
    pub fn get(&self, call_site: &str) {
        let t0 = std::time::Instant::now();
        let mut guard = self.count.lock();
        self.record(call_site, t0);
        *guard += 1;
    }

    /// `lockref_get_not_dead`: takes a reference unless the count is
    /// negative (dead).
    pub fn get_not_dead(&self, call_site: &str) -> bool {
        let t0 = std::time::Instant::now();
        let mut guard = self.count.lock();
        self.record(call_site, t0);
        if *guard < 0 {
            false
        } else {
            *guard += 1;
            true
        }
    }

    /// `lockref_put_return`: drops a reference, returning the new count.
    pub fn put(&self, call_site: &str) -> i64 {
        let t0 = std::time::Instant::now();
        let mut guard = self.count.lock();
        self.record(call_site, t0);
        *guard -= 1;
        *guard
    }

    /// Marks the object dead (count becomes negative), as `d_kill` does.
    pub fn mark_dead(&self) {
        *self.count.lock() = -128;
    }

    /// Current count (diagnostics).
    pub fn count(&self) -> i64 {
        *self.count.lock()
    }
}

/// A directory entry.
pub struct Dentry<L: RawLock>
where
    L::Node: 'static,
{
    /// File name within the parent.
    pub name: String,
    /// Reference count guarded by the dentry's lockref.
    pub lockref: LockRef<L>,
}

/// A minimal dentry cache for one directory.
pub struct DentryDir<L: RawLock>
where
    L::Node: 'static,
{
    /// The directory's own lockref (`open1` contends on the *parent*).
    pub lockref: LockRef<L>,
    children: LockMutex<HashMap<String, Arc<Dentry<L>>>, L>,
    stats: Arc<LockStatRegistry>,
}

impl<L: RawLock> DentryDir<L>
where
    L::Node: 'static,
{
    /// Creates an empty directory.
    pub fn new(stats: Arc<LockStatRegistry>) -> Self {
        DentryDir {
            lockref: LockRef::new(1, "lockref.lock", stats.clone()),
            children: LockMutex::new(HashMap::new()),
            stats,
        }
    }

    /// `d_alloc`: creates a child dentry, referencing the parent.
    pub fn d_alloc(&self, name: &str) -> Arc<Dentry<L>> {
        // Allocating a child takes a reference on the parent.
        self.lockref.get("d_alloc");
        let dentry = Arc::new(Dentry {
            name: name.to_string(),
            lockref: LockRef::new(1, "lockref.lock", self.stats.clone()),
        });
        self.children
            .lock()
            .insert(name.to_string(), Arc::clone(&dentry));
        dentry
    }

    /// `dput`: drops a child dentry reference; when it reaches zero the
    /// dentry is removed from the directory and the parent reference is
    /// released.
    pub fn dput(&self, dentry: &Arc<Dentry<L>>) {
        let remaining = dentry.lockref.put("dput");
        if remaining <= 0 {
            dentry.lockref.mark_dead();
            self.children.lock().remove(&dentry.name);
            let _ = self.lockref.put("dput");
        }
    }

    /// Looks up a child by name, taking a reference (like `d_lookup` +
    /// `lockref_get_not_dead`).
    pub fn lookup(&self, name: &str) -> Option<Arc<Dentry<L>>> {
        let child = self.children.lock().get(name).cloned()?;
        if child.lockref.get_not_dead("lockref_get_not_dead") {
            Some(child)
        } else {
            None
        }
    }

    /// Number of cached children.
    pub fn children_count(&self) -> usize {
        self.children.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locks::McsLock;
    use qspinlock::CnaQSpinLock;

    fn stats() -> Arc<LockStatRegistry> {
        Arc::new(LockStatRegistry::new())
    }

    #[test]
    fn lockref_get_put_roundtrip() {
        let l: LockRef<McsLock> = LockRef::new(1, "lockref.lock", stats());
        l.get("dget");
        assert_eq!(l.count(), 2);
        assert_eq!(l.put("dput"), 1);
        assert!(l.get_not_dead("lookup"));
        l.mark_dead();
        assert!(!l.get_not_dead("lookup"));
    }

    #[test]
    fn d_alloc_and_dput_balance_parent_references() {
        let s = stats();
        let dir: DentryDir<McsLock> = DentryDir::new(s);
        let initial = dir.lockref.count();
        let d = dir.d_alloc("file-0");
        assert_eq!(dir.lockref.count(), initial + 1);
        assert_eq!(dir.children_count(), 1);
        dir.dput(&d);
        assert_eq!(dir.lockref.count(), initial);
        assert_eq!(dir.children_count(), 0);
    }

    #[test]
    fn lookup_references_live_children_only() {
        let dir: DentryDir<McsLock> = DentryDir::new(stats());
        let d = dir.d_alloc("x");
        let found = dir.lookup("x").expect("child exists");
        assert_eq!(found.name, "x");
        // Drop both references; the child disappears.
        dir.dput(&found);
        dir.dput(&d);
        assert!(dir.lookup("x").is_none());
    }

    #[test]
    fn open_close_storm_in_one_directory() {
        let s = stats();
        let dir: Arc<DentryDir<CnaQSpinLock>> = Arc::new(DentryDir::new(s.clone()));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let dir = Arc::clone(&dir);
                scope.spawn(move || {
                    for i in 0..300 {
                        let d = dir.d_alloc(&format!("t{t}-f{i}"));
                        dir.dput(&d);
                    }
                });
            }
        });
        assert_eq!(dir.children_count(), 0);
        let report = s.report();
        assert!(report.rows.iter().any(|r| r.lock == "lockref.lock"));
    }
}
