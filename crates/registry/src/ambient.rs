//! LiTL-style process-wide lock selection for *generic* substrates.
//!
//! The kernel and storage substrates are generic over the lock type
//! (`FilesStruct<L>`, `Db<L>`, `CacheDb<L>`): they create lock instances
//! internally via `L::default()`, so a `DynLock` value cannot be threaded in
//! from the outside. [`AmbientLock`] closes the gap the same way LiTL does
//! for unmodified applications — the algorithm is selected once per process
//! (here: per [`with_ambient`] scope) and every lock constructed inside that
//! scope dispatches to it dynamically.
//!
//! `AmbientLock::default()` reads the scoped [`LockId`] and builds the
//! registered [`DynLock`] for it; `lock`/`unlock` forward through the erased
//! adapter, storing the acquisition token in the node. Scopes are serialized
//! by a global mutex, so two concurrent [`with_ambient`] calls (e.g.
//! parallel tests) cannot observe each other's selection.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sync_core::raw::RawLock;
use sync_core::{DynLock, LockToken};

use crate::LockId;

/// Index into [`LockId::ALL`] of the currently selected ambient algorithm.
static AMBIENT_INDEX: AtomicUsize = AtomicUsize::new(AMBIENT_DEFAULT);

/// Default ambient algorithm: MCS (the paper's baseline).
const AMBIENT_DEFAULT: usize = 5;

/// Serializes [`with_ambient`] scopes.
static AMBIENT_GATE: Mutex<()> = Mutex::new(());

fn index_of(id: LockId) -> usize {
    LockId::ALL
        .iter()
        .position(|&candidate| candidate == id)
        .expect("every LockId appears in LockId::ALL")
}

/// The [`LockId`] that [`AmbientLock::default`] currently builds.
pub fn ambient_lock_id() -> LockId {
    LockId::ALL[AMBIENT_INDEX.load(Ordering::SeqCst) % LockId::ALL.len()]
}

/// Runs `f` with `id` as the process-wide ambient algorithm.
///
/// Every [`AmbientLock`] default-constructed while `f` runs — on any thread,
/// which is what the substrate worker threads rely on — wraps the registered
/// lock of `id`. Scopes are serialized process-wide and the previous
/// selection is restored on exit (also on panic).
pub fn with_ambient<R>(id: LockId, f: impl FnOnce() -> R) -> R {
    let _gate = AMBIENT_GATE.lock().unwrap_or_else(|poisoned| {
        // The gate holds no data; a panic inside a previous scope left
        // nothing inconsistent (the index was restored by `Restore`).
        poisoned.into_inner()
    });
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT_INDEX.store(self.0, Ordering::SeqCst);
        }
    }
    let _restore = Restore(AMBIENT_INDEX.swap(index_of(id), Ordering::SeqCst));
    f()
}

/// Node of an [`AmbientLock`]: stores the erased acquisition token.
#[derive(Debug, Default)]
pub struct AmbientNode {
    token: AtomicUsize,
}

/// A [`RawLock`] whose algorithm is the ambient [`LockId`] at construction
/// time.
///
/// Instantiate generic substrates with this type
/// (`run_will_it_scale::<AmbientLock>`, `Db<AmbientLock>`, …) inside a
/// [`with_ambient`] scope to drive them with a runtime-chosen algorithm.
#[derive(Debug)]
pub struct AmbientLock {
    inner: DynLock,
}

impl Default for AmbientLock {
    fn default() -> Self {
        AmbientLock {
            inner: ambient_lock_id().build(),
        }
    }
}

impl AmbientLock {
    /// The algorithm this instance was bound to at construction.
    pub fn algorithm(&self) -> &'static str {
        self.inner.name()
    }
}

impl RawLock for AmbientLock {
    type Node = AmbientNode;
    /// Reports are expected to overwrite this with the selected algorithm's
    /// name (see the `*_dyn` entry points of the substrate crates).
    const NAME: &'static str = "ambient";

    unsafe fn lock(&self, node: &AmbientNode) {
        // SAFETY: the erased adapter manages the real queue node; the token
        // is stashed in `node` for the matching unlock, which the caller
        // guarantees happens once, on this thread.
        let token = unsafe { self.inner.raw_lock() };
        node.token.store(token.into_raw(), Ordering::Relaxed);
    }

    unsafe fn unlock(&self, node: &AmbientNode) {
        let raw = node.token.load(Ordering::Relaxed);
        // SAFETY: `node` is the acquisition's node (caller contract), so
        // `raw` is the token stored by the matching `lock` on this thread.
        unsafe {
            let token = LockToken::from_raw(raw);
            self.inner.raw_unlock(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use sync_core::LockMutex;

    #[test]
    fn ambient_scope_selects_the_algorithm_and_scopes_do_not_leak() {
        // Note: the ambient id outside any scope cannot be asserted here —
        // other tests of this binary run their own scopes concurrently. The
        // observable guarantees are: inside a scope the selection holds, and
        // a later scope is not polluted by an earlier one (restore-on-exit).
        with_ambient(LockId::Cna, || {
            assert_eq!(ambient_lock_id(), LockId::Cna);
            let lock = AmbientLock::default();
            assert_eq!(lock.algorithm(), "CNA");
        });
        with_ambient(LockId::Clh, || {
            assert_eq!(ambient_lock_id(), LockId::Clh);
        });
    }

    #[test]
    fn a_panicking_scope_does_not_wedge_later_scopes() {
        let result = std::panic::catch_unwind(|| {
            with_ambient(LockId::Tas, || panic!("scope body panics"));
        });
        assert!(result.is_err());
        // The gate recovers from poisoning and the selection still works.
        with_ambient(LockId::Ticket, || {
            assert_eq!(ambient_lock_id(), LockId::Ticket);
        });
    }

    #[test]
    fn ambient_lock_is_a_usable_raw_lock_for_generic_code() {
        with_ambient(LockId::Hmcs, || {
            const THREADS: usize = 3;
            const ITERS: u64 = 500;
            let m: Arc<LockMutex<u64, AmbientLock>> = Arc::new(LockMutex::new(0));
            assert_eq!(m.raw().algorithm(), "HMCS");
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    let m = Arc::clone(&m);
                    s.spawn(move || {
                        for _ in 0..ITERS {
                            *m.lock() += 1;
                        }
                    });
                }
            });
            assert_eq!(*m.lock(), THREADS as u64 * ITERS);
        });
    }

    #[test]
    fn ambient_default_is_the_mcs_baseline() {
        assert_eq!(LockId::ALL[super::AMBIENT_DEFAULT], LockId::Mcs);
    }
}
