//! The lock registry: every evaluated algorithm, addressable by name.
//!
//! This crate is the workspace's equivalent of LiTL's interposition table
//! (§7 of the paper): one [`LockId`] per evaluated algorithm, a factory that
//! turns an id into a runtime-dispatched [`DynLock`], and the total mapping
//! onto the simulator's [`LockAlgorithm`] policy models. The harness, the
//! kernel substrates, the storage substrates, the figure benches and the
//! `lockbench` CLI all consume this table, so adding a lock algorithm means
//! registering it **here, once** — every workload can then drive it by name.
//!
//! * `LockId::ALL` — the canonical list (both qspinlock slow paths and the
//!   §6 "CNA (opt)" variant included).
//! * [`LockId::build`] — `LockId → DynLock` (the type-erased real lock).
//! * [`LockId::sim_algorithm`] — `LockId → LockAlgorithm` (the simulator
//!   policy model); total by construction, checked by tests.
//! * [`LockId::parse`] / [`std::fmt::Display`] — name ⇄ id round-tripping.
//! * [`ambient`] — LiTL-style process-wide selection for driving *generic*
//!   substrates (`FilesStruct<L>`, `Db<L>`, …) with a runtime-chosen lock.
//!
//! # Examples
//!
//! ```
//! use registry::LockId;
//!
//! let id: LockId = "cna".parse().unwrap();
//! let lock = id.build();
//! assert_eq!(lock.name(), "CNA");
//! let _guard = lock.lock();
//! ```

#![warn(missing_docs)]

pub mod ambient;

use std::fmt;
use std::str::FromStr;

use cna::raw::CnaLockOpt;
use cna::CnaLock;
use locks::{
    CBoMcsLock, CPtlTktLock, CTktTktLock, ClhLock, FissileLock, HboLock, HmcsLock, McsCrLock,
    McsLock, PartitionedTicketLock, TestAndSetLock, TicketLock, TtasBackoffLock,
};
use numa_sim::lock_model::LockAlgorithm;
use qspinlock::{CnaQSpinLock, StockQSpinLock};
use sync_core::DynLock;

pub use ambient::{with_ambient, AmbientLock, AmbientNode};

/// Every lock algorithm evaluated by the reproduction, one variant each.
///
/// The variants cover the paper's full comparison set: the simple spin locks
/// of §2, the FIFO queue locks, the hierarchical NUMA-aware locks, CNA with
/// and without the §6 shuffle-reduction optimisation, and both slow paths of
/// the kernel qspinlock (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockId {
    /// Test-and-set spin lock.
    Tas,
    /// Test-and-test-and-set with exponential backoff.
    TtasBackoff,
    /// Ticket lock.
    Ticket,
    /// Partitioned ticket lock (PTL).
    PartitionedTicket,
    /// CLH queue lock.
    Clh,
    /// MCS queue lock.
    Mcs,
    /// Hierarchical backoff lock.
    Hbo,
    /// Cohort lock: backoff global, MCS locals.
    CBoMcs,
    /// Cohort lock: ticket global, ticket locals.
    CTktTkt,
    /// Cohort lock: partitioned-ticket global, ticket locals.
    CPtlTkt,
    /// Two-level hierarchical MCS.
    Hmcs,
    /// The paper's CNA lock, default parameters.
    Cna,
    /// CNA with the §6 shuffle-reduction optimisation ("CNA (opt)").
    CnaOpt,
    /// Kernel qspinlock with the stock (MCS) slow path.
    QSpinStock,
    /// Kernel qspinlock with the paper's CNA slow path.
    QSpinCna,
    /// Fissile lock: TS fast path over an MCS slow path (admission family).
    Fissile,
    /// Concurrency-restricting MCS: bounded active set, passive list.
    Mcscr,
}

/// Long-term fairness guarantee of a lock's hand-over policy — the paper's
/// §4 taxonomy, recorded per algorithm so experiments can assert it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FairnessClass {
    /// Strict FIFO admission: threads acquire in arrival order (MCS, CLH,
    /// ticket-family, stock qspinlock). Long-term fairness factor ≈ 0.5.
    Fifo,
    /// No ordering guarantee at all: whoever wins the race gets the lock
    /// (TAS, TTAS-backoff, HBO). Starvation is possible.
    None,
    /// NUMA-aware with a bounded intra-socket handoff budget (cohort locks,
    /// HMCS): remote threads wait at most the cohort-detection bound.
    CohortBounded,
    /// CNA's policy: prefer same-socket successors but force a main-queue
    /// epoch regularly, giving long-term (not short-term) fairness.
    EpochBounded,
}

impl FairnessClass {
    /// Lower-case token used in tables and CSVs.
    pub const fn name(self) -> &'static str {
        match self {
            FairnessClass::Fifo => "fifo",
            FairnessClass::None => "none",
            FairnessClass::CohortBounded => "cohort-bounded",
            FairnessClass::EpochBounded => "epoch-bounded",
        }
    }
}

impl fmt::Display for FairnessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a lock name does not match any registered algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownLockError {
    /// The name that failed to parse.
    pub name: String,
}

impl fmt::Display for UnknownLockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown lock algorithm {:?} (known: {})",
            self.name,
            LockId::names().join(", ")
        )
    }
}

impl std::error::Error for UnknownLockError {}

impl LockId {
    /// All registered algorithms, in the order `lockbench list` prints them.
    pub const ALL: [LockId; 17] = [
        LockId::Tas,
        LockId::TtasBackoff,
        LockId::Ticket,
        LockId::PartitionedTicket,
        LockId::Clh,
        LockId::Mcs,
        LockId::Hbo,
        LockId::CBoMcs,
        LockId::CTktTkt,
        LockId::CPtlTkt,
        LockId::Hmcs,
        LockId::Cna,
        LockId::CnaOpt,
        LockId::QSpinStock,
        LockId::QSpinCna,
        LockId::Fissile,
        LockId::Mcscr,
    ];

    /// Canonical, unique, parseable name (the `lockbench --lock` token).
    pub const fn name(self) -> &'static str {
        match self {
            LockId::Tas => "tas",
            LockId::TtasBackoff => "ttas-bo",
            LockId::Ticket => "ticket",
            LockId::PartitionedTicket => "ptl",
            LockId::Clh => "clh",
            LockId::Mcs => "mcs",
            LockId::Hbo => "hbo",
            LockId::CBoMcs => "c-bo-mcs",
            LockId::CTktTkt => "c-tkt-tkt",
            LockId::CPtlTkt => "c-ptl-tkt",
            LockId::Hmcs => "hmcs",
            LockId::Cna => "cna",
            LockId::CnaOpt => "cna-opt",
            LockId::QSpinStock => "qspinlock-stock",
            LockId::QSpinCna => "qspinlock-cna",
            LockId::Fissile => "fissile",
            LockId::Mcscr => "mcscr",
        }
    }

    /// The [`RawLock::NAME`](sync_core::RawLock::NAME) of the underlying
    /// implementation — the label used in the paper's plots. Not unique:
    /// both [`LockId::Cna`] and [`LockId::QSpinCna`] are plotted as "CNA".
    pub const fn raw_name(self) -> &'static str {
        match self {
            LockId::Tas => "TAS",
            LockId::TtasBackoff => "TTAS-BO",
            LockId::Ticket => "Ticket",
            LockId::PartitionedTicket => "PTL",
            LockId::Clh => "CLH",
            LockId::Mcs => "MCS",
            LockId::Hbo => "HBO",
            LockId::CBoMcs => "C-BO-MCS",
            LockId::CTktTkt => "C-TKT-TKT",
            LockId::CPtlTkt => "C-PTL-TKT",
            LockId::Hmcs => "HMCS",
            LockId::Cna => "CNA",
            LockId::CnaOpt => "CNA (opt)",
            LockId::QSpinStock => "stock",
            LockId::QSpinCna => "CNA",
            LockId::Fissile => "Fissile",
            LockId::Mcscr => "MCSCR",
        }
    }

    /// One-line description for `lockbench list`.
    pub const fn description(self) -> &'static str {
        match self {
            LockId::Tas => "test-and-set spin lock (§2 baseline)",
            LockId::TtasBackoff => "test-and-test-and-set with exponential backoff",
            LockId::Ticket => "ticket lock (FIFO, global spinning)",
            LockId::PartitionedTicket => "partitioned ticket lock (FIFO, distributed grants)",
            LockId::Clh => "CLH queue lock (implicit predecessor queue)",
            LockId::Mcs => "MCS queue lock (the paper's main baseline)",
            LockId::Hbo => "hierarchical backoff lock (NUMA-aware, unfair)",
            LockId::CBoMcs => "cohort lock: backoff global / MCS locals",
            LockId::CTktTkt => "cohort lock: ticket global / ticket locals",
            LockId::CPtlTkt => "cohort lock: partitioned-ticket global / ticket locals",
            LockId::Hmcs => "two-level hierarchical MCS",
            LockId::Cna => "compact NUMA-aware lock (the paper's algorithm)",
            LockId::CnaOpt => "CNA with the §6 shuffle-reduction optimisation",
            LockId::QSpinStock => "4-byte kernel qspinlock, stock MCS slow path",
            LockId::QSpinCna => "4-byte kernel qspinlock, CNA slow path (the paper's patch)",
            LockId::Fissile => "Fissile lock: TS fast path + MCS slow path, bounded barging",
            LockId::Mcscr => "concurrency-restricting MCS (bounded active set, passive list)",
        }
    }

    /// Whether the lock's shared state is a single word (or the kernel's
    /// four bytes) independent of the socket count — the paper's compactness
    /// criterion.
    pub const fn is_compact(self) -> bool {
        !matches!(
            self,
            LockId::CBoMcs | LockId::CTktTkt | LockId::CPtlTkt | LockId::Hmcs
        ) && !matches!(
            self,
            LockId::PartitionedTicket | LockId::Fissile | LockId::Mcscr
        )
    }

    /// Expected size of the lock struct in bytes — the paper's compactness
    /// measure, pinned here so a refactor that bloats a lock word fails the
    /// smoke matrix (`tests/compactness.rs` asserts this against
    /// [`DynLock::lock_size`] for every registered algorithm).
    ///
    /// Word-sized locks store `usize`/smaller shared state inline; the
    /// hierarchical locks count their top-level struct (per-socket state
    /// behind pointers is extra, which is exactly the paper's point).
    pub const fn compactness(self) -> usize {
        match self {
            LockId::Tas | LockId::TtasBackoff => 1,
            LockId::QSpinStock | LockId::QSpinCna => 4,
            LockId::Ticket
            | LockId::Clh
            | LockId::Mcs
            | LockId::Hbo
            | LockId::Cna
            | LockId::CnaOpt => 8,
            LockId::Fissile => 16,
            LockId::PartitionedTicket | LockId::CBoMcs => 24,
            LockId::CTktTkt | LockId::Hmcs => 32,
            LockId::Mcscr => 40,
            LockId::CPtlTkt => 48,
        }
    }

    /// The long-term fairness guarantee of the hand-over policy (§4).
    pub const fn fairness_class(self) -> FairnessClass {
        match self {
            LockId::Tas | LockId::TtasBackoff | LockId::Hbo | LockId::Fissile => {
                FairnessClass::None
            }
            LockId::Ticket
            | LockId::PartitionedTicket
            | LockId::Clh
            | LockId::Mcs
            | LockId::QSpinStock => FairnessClass::Fifo,
            LockId::CBoMcs | LockId::CTktTkt | LockId::CPtlTkt | LockId::Hmcs => {
                FairnessClass::CohortBounded
            }
            // MCSCR recirculates passive waiters back into the active set on
            // a fixed release cadence — long-term (not short-term) fairness,
            // structurally the same guarantee CNA's epochs give.
            LockId::Cna | LockId::CnaOpt | LockId::QSpinCna | LockId::Mcscr => {
                FairnessClass::EpochBounded
            }
        }
    }

    /// Whether the hand-over policy prefers same-socket successors.
    pub const fn is_numa_aware(self) -> bool {
        matches!(
            self,
            LockId::Hbo
                | LockId::CBoMcs
                | LockId::CTktTkt
                | LockId::CPtlTkt
                | LockId::Hmcs
                | LockId::Cna
                | LockId::CnaOpt
                | LockId::QSpinCna
        )
    }

    /// Whether [`DynLock::try_lock`] has a real non-blocking path for this
    /// algorithm (i.e. the implementation provides
    /// [`RawTryLock`](sync_core::RawTryLock)).
    pub const fn supports_try_lock(self) -> bool {
        matches!(
            self,
            LockId::Tas
                | LockId::TtasBackoff
                | LockId::Ticket
                | LockId::Hbo
                | LockId::QSpinStock
                | LockId::QSpinCna
                | LockId::Fissile
        )
    }

    /// Whether the lock's source is covered by the `modelcheck` interleaving
    /// explorer (its smoke suite instantiates the implementation with
    /// `ModelAtomics` and exhausts the bounded 2-thread tree in CI).
    ///
    /// Every lock wired through the generic
    /// [`Atomics`](sync_core::atomics::Atomics) family is checked — all but
    /// the qspinlocks, which hold their queue nodes in a global per-CPU
    /// static table and so cannot be instantiated with an instrumented
    /// atomic family.
    pub const fn is_model_checked(self) -> bool {
        !matches!(self, LockId::QSpinStock | LockId::QSpinCna)
    }

    /// Whether the lock's source falls in the `cnalint` audit scope: every
    /// `Ordering::` site of the implementation is cross-checked against the
    /// machine-readable table in `docs/orderings.md` (rule
    /// `ordering-audit-drift`), alongside the rest of the lock-discipline
    /// rules. The qspinlocks live outside the audited crates (their per-CPU
    /// static table keeps them off the generic-atomics path); their orderings
    /// are audited as prose only.
    pub const fn is_linted(self) -> bool {
        !matches!(self, LockId::QSpinStock | LockId::QSpinCna)
    }

    /// Builds the type-erased real lock — the `LockId → DynLock` factory.
    pub fn build(self) -> DynLock {
        match self {
            LockId::Tas => DynLock::new_try::<TestAndSetLock>(),
            LockId::TtasBackoff => DynLock::new_try::<TtasBackoffLock>(),
            LockId::Ticket => DynLock::new_try::<TicketLock>(),
            LockId::PartitionedTicket => DynLock::new::<PartitionedTicketLock>(),
            LockId::Clh => DynLock::new::<ClhLock>(),
            LockId::Mcs => DynLock::new::<McsLock>(),
            LockId::Hbo => DynLock::new_try::<HboLock>(),
            LockId::CBoMcs => DynLock::new::<CBoMcsLock>(),
            LockId::CTktTkt => DynLock::new::<CTktTktLock>(),
            LockId::CPtlTkt => DynLock::new::<CPtlTktLock>(),
            LockId::Hmcs => DynLock::new::<HmcsLock>(),
            LockId::Cna => DynLock::new::<CnaLock>(),
            LockId::CnaOpt => DynLock::new::<CnaLockOpt>(),
            LockId::QSpinStock => DynLock::new_try::<StockQSpinLock>(),
            LockId::QSpinCna => DynLock::new_try::<CnaQSpinLock>(),
            LockId::Fissile => DynLock::new_try::<FissileLock>(),
            LockId::Mcscr => DynLock::new::<McsCrLock>(),
        }
    }

    /// The simulator policy model of this algorithm — the total mapping
    /// `LockId → LockAlgorithm` (real/sim drift is caught by tests).
    ///
    /// Algorithms whose *admission order* coincides share a model: CLH and
    /// the stock qspinlock grant strictly FIFO like MCS, PTL admits like a
    /// ticket lock, TTAS-backoff races like TAS, and the CNA-slow-path
    /// qspinlock admits like CNA.
    pub const fn sim_algorithm(self) -> LockAlgorithm {
        match self {
            LockId::Tas | LockId::TtasBackoff => LockAlgorithm::Tas,
            LockId::Ticket | LockId::PartitionedTicket => LockAlgorithm::Ticket,
            LockId::Clh | LockId::Mcs | LockId::QSpinStock => LockAlgorithm::Mcs,
            LockId::Hbo => LockAlgorithm::Hbo,
            LockId::CBoMcs => LockAlgorithm::CBoMcs,
            LockId::CTktTkt => LockAlgorithm::CTktTkt,
            LockId::CPtlTkt => LockAlgorithm::CPtlTkt,
            LockId::Hmcs => LockAlgorithm::Hmcs,
            LockId::Cna | LockId::QSpinCna => LockAlgorithm::Cna,
            LockId::CnaOpt => LockAlgorithm::CnaOpt,
            LockId::Fissile => LockAlgorithm::Fissile,
            LockId::Mcscr => LockAlgorithm::Mcscr,
        }
    }

    /// Parses a lock name (canonical names plus a few common aliases),
    /// case-insensitively.
    pub fn parse(name: &str) -> Result<LockId, UnknownLockError> {
        let normalized: String = name.trim().to_ascii_lowercase().replace(['_', ' '], "-");
        for id in LockId::ALL {
            if id.name() == normalized {
                return Ok(id);
            }
        }
        match normalized.as_str() {
            "test-and-set" => Ok(LockId::Tas),
            "ttas" | "backoff" => Ok(LockId::TtasBackoff),
            "tkt" => Ok(LockId::Ticket),
            "partitioned-ticket" => Ok(LockId::PartitionedTicket),
            "cohort" => Ok(LockId::CBoMcs),
            "cna-sr" | "cnaopt" => Ok(LockId::CnaOpt),
            "stock" | "qspinlock" => Ok(LockId::QSpinStock),
            "qspinlock-opt" => Ok(LockId::QSpinCna),
            "cr" | "mcs-cr" => Ok(LockId::Mcscr),
            _ => Err(UnknownLockError {
                name: name.to_string(),
            }),
        }
    }

    /// Parses a comma-separated list of lock names; `"all"` selects every
    /// registered algorithm.
    pub fn parse_list(list: &str) -> Result<Vec<LockId>, UnknownLockError> {
        if list.trim().eq_ignore_ascii_case("all") {
            return Ok(LockId::ALL.to_vec());
        }
        list.split(',')
            .filter(|part| !part.trim().is_empty())
            .map(LockId::parse)
            .collect()
    }

    /// The canonical names of all registered algorithms.
    pub fn names() -> Vec<&'static str> {
        LockId::ALL.iter().map(|id| id.name()).collect()
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for LockId {
    type Err = UnknownLockError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LockId::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::TypeId;
    use std::collections::HashSet;
    use std::sync::Arc;
    use sync_core::DynLockMutex;

    #[test]
    fn registry_has_at_least_fourteen_algorithms() {
        assert!(LockId::ALL.len() >= 14, "got {}", LockId::ALL.len());
    }

    #[test]
    fn names_are_unique_and_parse_round_trips() {
        let mut seen = HashSet::new();
        for id in LockId::ALL {
            assert!(seen.insert(id.name()), "duplicate name {:?}", id.name());
            assert_eq!(LockId::parse(id.name()).unwrap(), id);
            assert_eq!(id.name().parse::<LockId>().unwrap(), id);
            assert_eq!(id.to_string(), id.name());
            // Parsing is case-insensitive and tolerant of underscores.
            assert_eq!(
                LockId::parse(&id.name().to_ascii_uppercase().replace('-', "_")).unwrap(),
                id
            );
        }
    }

    #[test]
    fn unknown_names_error_and_list_the_registry() {
        let err = LockId::parse("no-such-lock").unwrap_err();
        assert_eq!(err.name, "no-such-lock");
        assert!(err.to_string().contains("cna"));
        assert!(LockId::parse_list("cna,no-such-lock").is_err());
    }

    #[test]
    fn parse_list_handles_commas_and_all() {
        assert_eq!(
            LockId::parse_list("cna, mcs").unwrap(),
            vec![LockId::Cna, LockId::Mcs]
        );
        assert_eq!(LockId::parse_list("all").unwrap(), LockId::ALL.to_vec());
        assert_eq!(LockId::parse_list("hmcs,").unwrap(), vec![LockId::Hmcs]);
    }

    /// Every `RawLock` implementation exported for evaluation from the
    /// `locks`, `cna` and `qspinlock` crates must be registered exactly
    /// once. The concrete type list below is the review gate: when a new
    /// lock export lands, add it here *and* register it, or this test names
    /// the omission. (Diagnostic-only variants — always/never-flush CNA and
    /// the tunable CNA — are deliberately not part of the evaluated set.)
    #[test]
    fn every_exported_lock_is_registered_exactly_once() {
        use cna::raw::CnaLockOpt;
        let evaluated_exports: Vec<(&str, TypeId)> = vec![
            (
                "locks::TestAndSetLock",
                TypeId::of::<locks::TestAndSetLock>(),
            ),
            (
                "locks::TtasBackoffLock",
                TypeId::of::<locks::TtasBackoffLock>(),
            ),
            ("locks::TicketLock", TypeId::of::<locks::TicketLock>()),
            (
                "locks::PartitionedTicketLock",
                TypeId::of::<locks::PartitionedTicketLock>(),
            ),
            ("locks::ClhLock", TypeId::of::<locks::ClhLock>()),
            ("locks::McsLock", TypeId::of::<locks::McsLock>()),
            ("locks::HboLock", TypeId::of::<locks::HboLock>()),
            ("locks::CBoMcsLock", TypeId::of::<locks::CBoMcsLock>()),
            ("locks::CTktTktLock", TypeId::of::<locks::CTktTktLock>()),
            ("locks::CPtlTktLock", TypeId::of::<locks::CPtlTktLock>()),
            ("locks::HmcsLock", TypeId::of::<locks::HmcsLock>()),
            ("cna::CnaLock", TypeId::of::<cna::CnaLock>()),
            ("cna::raw::CnaLockOpt", TypeId::of::<CnaLockOpt>()),
            (
                "qspinlock::StockQSpinLock",
                TypeId::of::<qspinlock::StockQSpinLock>(),
            ),
            (
                "qspinlock::CnaQSpinLock",
                TypeId::of::<qspinlock::CnaQSpinLock>(),
            ),
            ("locks::FissileLock", TypeId::of::<locks::FissileLock>()),
            ("locks::McsCrLock", TypeId::of::<locks::McsCrLock>()),
        ];
        let registered: Vec<TypeId> = LockId::ALL
            .iter()
            .map(|id| id.build().lock_type_id())
            .collect();
        let registered_set: HashSet<TypeId> = registered.iter().copied().collect();
        assert_eq!(
            registered.len(),
            registered_set.len(),
            "some concrete lock type is registered under two LockIds"
        );
        for (name, type_id) in &evaluated_exports {
            assert!(
                registered_set.contains(type_id),
                "{name} is exported but not registered in LockId::ALL"
            );
        }
        assert_eq!(
            evaluated_exports.len(),
            registered.len(),
            "registry contains an id not in the evaluated-exports list; update the list"
        );
    }

    #[test]
    fn built_locks_report_the_registered_raw_name() {
        for id in LockId::ALL {
            let lock = id.build();
            assert_eq!(
                lock.name(),
                id.raw_name(),
                "{id}: DynLock name drifted from the registry"
            );
            assert_eq!(
                lock.supports_try_lock(),
                id.supports_try_lock(),
                "{id}: try-lock support drifted from the registry"
            );
        }
    }

    #[test]
    fn sim_mapping_is_total_and_every_model_builds() {
        let cost = numa_sim::CostModel::default();
        for id in LockId::ALL {
            let algo = id.sim_algorithm();
            let model = algo.build(4, 8, &cost);
            assert!(
                !model.name().is_empty(),
                "{id}: sim model has an empty name"
            );
        }
    }

    #[test]
    fn every_registered_lock_provides_mutual_exclusion_when_erased() {
        const THREADS: usize = 3;
        const ITERS: u64 = 400;
        for id in LockId::ALL {
            let m = Arc::new(DynLockMutex::new(id.build(), 0u64));
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    let m = Arc::clone(&m);
                    s.spawn(move || {
                        for _ in 0..ITERS {
                            *m.lock() += 1;
                        }
                    });
                }
            });
            assert_eq!(*m.lock(), THREADS as u64 * ITERS, "{id} lost updates");
        }
    }

    #[test]
    fn erased_try_lock_agrees_with_raw_try_lock_semantics() {
        for id in LockId::ALL {
            let lock = id.build();
            if id.supports_try_lock() {
                let g = lock.lock();
                assert!(
                    lock.try_lock().is_none(),
                    "{id}: try_lock succeeded while held"
                );
                drop(g);
                let g = lock
                    .try_lock()
                    .unwrap_or_else(|| panic!("{id}: try_lock failed on a free lock"));
                drop(g);
            } else {
                assert!(
                    lock.try_lock().is_none(),
                    "{id}: try_lock must be unsupported"
                );
                drop(lock.lock());
            }
        }
    }

    #[test]
    fn metadata_matches_the_paper_taxonomy() {
        assert!(LockId::Cna.is_compact() && LockId::Cna.is_numa_aware());
        assert!(LockId::Mcs.is_compact() && !LockId::Mcs.is_numa_aware());
        assert!(!LockId::Hmcs.is_compact() && LockId::Hmcs.is_numa_aware());
        assert!(!LockId::CBoMcs.is_compact());
        assert!(LockId::QSpinCna.is_compact() && LockId::QSpinCna.is_numa_aware());
        for id in LockId::ALL {
            assert!(!id.description().is_empty());
        }
    }

    #[test]
    fn model_checked_set_matches_the_suite_coverage() {
        // The paper's algorithm and its main baseline are both checked.
        assert!(LockId::Cna.is_model_checked());
        assert!(LockId::Mcs.is_model_checked());
        // The hierarchical and backoff locks are wired through `Atomics`.
        assert!(LockId::CBoMcs.is_model_checked());
        assert!(LockId::Hmcs.is_model_checked());
        assert!(LockId::Hbo.is_model_checked());
        // The admission-family locks are generic over `Atomics` like the rest.
        assert!(LockId::Fissile.is_model_checked());
        assert!(LockId::Mcscr.is_model_checked());
        // The qspinlocks use a global per-CPU node table and cannot be
        // instantiated with an instrumented atomic family.
        assert!(!LockId::QSpinStock.is_model_checked());
        assert!(!LockId::QSpinCna.is_model_checked());
        assert_eq!(
            LockId::ALL
                .iter()
                .filter(|id| id.is_model_checked())
                .count(),
            15
        );
    }

    #[test]
    fn linted_set_covers_everything_but_the_qspinlocks() {
        for id in LockId::ALL {
            assert_eq!(
                id.is_linted(),
                !matches!(id, LockId::QSpinStock | LockId::QSpinCna),
                "{id}: lint-audit coverage drifted"
            );
        }
    }

    #[test]
    fn compactness_matches_the_built_lock_size() {
        for id in LockId::ALL {
            assert_eq!(
                id.compactness(),
                id.build().lock_size(),
                "{id}: registered compactness drifted from size_of"
            );
        }
    }

    #[test]
    fn compactness_agrees_with_the_compact_predicate() {
        for id in LockId::ALL {
            assert_eq!(
                id.is_compact(),
                id.compactness() <= std::mem::size_of::<usize>(),
                "{id}: is_compact() disagrees with compactness()"
            );
        }
    }

    #[test]
    fn fairness_classes_match_the_paper() {
        use FairnessClass::*;
        assert_eq!(LockId::Mcs.fairness_class(), Fifo);
        assert_eq!(LockId::QSpinStock.fairness_class(), Fifo);
        assert_eq!(LockId::Tas.fairness_class(), None);
        assert_eq!(LockId::Hbo.fairness_class(), None);
        assert_eq!(LockId::Hmcs.fairness_class(), CohortBounded);
        assert_eq!(LockId::Cna.fairness_class(), EpochBounded);
        assert_eq!(LockId::QSpinCna.fairness_class(), EpochBounded);
        // The admission family trades FIFO for throughput: Fissile barges
        // (unordered, starvation bounded only by the handoff bit), MCSCR
        // recirculates its passive list on a release cadence (epochal).
        assert_eq!(LockId::Fissile.fairness_class(), None);
        assert_eq!(LockId::Mcscr.fairness_class(), EpochBounded);
        // Every NUMA-aware lock trades strict FIFO away, and a FIFO class
        // always means a NUMA-oblivious lock. (The converse no longer holds:
        // MCSCR is NUMA-oblivious yet epoch-bounded by recirculation.)
        for id in LockId::ALL {
            if id.is_numa_aware() {
                assert_ne!(
                    id.fairness_class(),
                    Fifo,
                    "{id}: NUMA-aware locks cannot be strictly FIFO"
                );
            }
            if id.fairness_class() == Fifo {
                assert!(
                    !id.is_numa_aware(),
                    "{id}: FIFO admission precludes NUMA preference"
                );
            }
        }
        assert_eq!(FairnessClass::EpochBounded.to_string(), "epoch-bounded");
    }
}
