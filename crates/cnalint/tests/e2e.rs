//! End-to-end checks against the seeded fixture tree in `tests/fixtures/`:
//! one violation per rule, each asserted with its rule id and exact span,
//! plus the allow-pragma and rule-filter semantics.

use std::path::PathBuf;

use cnalint::rules;
use cnalint::{run_check, Options};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

const BAD: &str = "crates/locks/src/bad.rs";

#[test]
fn every_rule_fires_on_its_seeded_violation_with_the_right_span() {
    let out = run_check(&Options::new(fixture_root())).unwrap();

    let spans: Vec<(&str, &str, u32)> = out
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();

    // R1 both drift directions: the SeqCst store at bad.rs:19 is missing from
    // the table, and the table's line-99 row matches no source site.
    assert!(spans.contains(&(rules::R1, BAD, 19)), "{spans:?}");
    assert!(
        spans.contains(&(rules::R1, "docs/orderings.md", 14)),
        "{spans:?}"
    );
    let stale = out
        .by_rule(rules::R1)
        .into_iter()
        .find(|d| d.file == "docs/orderings.md")
        .unwrap();
    assert!(stale.message.contains("stale audit row"), "{stale}");

    // R2–R6, one seed each.
    assert!(spans.contains(&(rules::R2, BAD, 7)), "{spans:?}");
    assert!(spans.contains(&(rules::R3, BAD, 11)), "{spans:?}");
    assert!(spans.contains(&(rules::R4, BAD, 15)), "{spans:?}");
    assert!(spans.contains(&(rules::R5, BAD, 19)), "{spans:?}");
    assert!(
        spans.contains(&(rules::R6, "crates/registry/src/lib.rs", 5)),
        "{spans:?}"
    );

    // Exactly the seeded errors, nothing else: 2×R1 + R2..R6.
    assert_eq!(out.errors().count(), 7, "{:#?}", out.diagnostics);
    assert_eq!(out.exit_code(), 1);
}

#[test]
fn allow_pragma_suppresses_exactly_its_rule_and_unused_ones_warn() {
    let out = run_check(&Options::new(fixture_root())).unwrap();

    // The pragma'd SeqCst store at bad.rs:23 is suppressed...
    assert!(
        !out.by_rule(rules::R5).iter().any(|d| d.line == 23),
        "{:#?}",
        out.by_rule(rules::R5)
    );
    // ...while the bare one at bad.rs:19 still fires.
    assert!(out.by_rule(rules::R5).iter().any(|d| d.line == 19));

    // The spin-hint pragma at bad.rs:26 suppressed nothing → warning there,
    // and no unused-allow warning for the used pragma at 23.
    let unused = out.by_rule(rules::UNUSED_ALLOW);
    assert_eq!(unused.len(), 2, "{unused:#?}");
    assert_eq!((unused[0].file.as_str(), unused[0].line), (BAD, 26));

    // Co-located pragmas at bad.rs:30: the used no-seqcst-hotpath pragma on
    // the same line must not shadow its unused spin-hint neighbour — the
    // `used` set is keyed by rule, not just by (file, line).
    assert_eq!((unused[1].file.as_str(), unused[1].line), (BAD, 30));
    assert!(unused[1].message.contains("spin-hint"), "{:#?}", unused[1]);
    assert!(
        !out.by_rule(rules::R5).iter().any(|d| d.line == 30),
        "the co-located no-seqcst pragma should still suppress line 30"
    );
}

#[test]
fn unused_allow_json_diagnostics_carry_the_pragma_line() {
    let out = run_check(&Options::new(fixture_root())).unwrap();
    let json = cnalint::render_json(&out);
    // The JSON span is the pragma's own file:line, never a file-start stub.
    for line in [26, 30] {
        assert!(
            json.contains(&format!(
                "{{\"rule\": \"unused-allow\", \"severity\": \"warning\", \
                 \"file\": \"crates/locks/src/bad.rs\", \"line\": {line},"
            )),
            "missing unused-allow span for line {line} in:\n{json}"
        );
    }
    assert!(
        !json.contains(
            "\"rule\": \"unused-allow\", \"severity\": \"warning\", \
                        \"file\": \"crates/locks/src/bad.rs\", \"line\": 1,"
        ),
        "unused-allow must not collapse to the file's first line"
    );
}

#[test]
fn rule_filter_runs_only_selected_rules() {
    let mut opts = Options::new(fixture_root());
    opts.only_rules = Some(vec![rules::R4]);
    let out = run_check(&opts).unwrap();

    // Only the spin-hint seed fires...
    assert_eq!(out.errors().count(), 1, "{:#?}", out.diagnostics);
    assert_eq!(
        (out.diagnostics[0].rule, out.diagnostics[0].line),
        (rules::R4, 15)
    );
    // ...and only the spin-hint pragmas can be judged unused: the pragmas at
    // 23 and 30 (no-seqcst) belong to a filtered-out rule, so their silence
    // is not warned about.
    let unused = out.by_rule(rules::UNUSED_ALLOW);
    assert_eq!(unused.len(), 2, "{unused:#?}");
    assert_eq!(unused[0].line, 26);
    assert_eq!(unused[1].line, 30);
}
