//! Seeded violations for the cnalint e2e tests — one per rule. Line
//! numbers are asserted in `tests/lint.rs`; edit with care.
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

pub fn cmpxchg_bad(a: &AtomicUsize) {
    // R2 seed: failure ordering stronger than success.
    let _ = a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Acquire);
}

pub fn missing_safety(p: *mut u8) {
    unsafe { *p = 0 };
}

pub fn bare_spin(a: &AtomicBool) {
    while a.load(Ordering::Relaxed) {}
}

pub fn seqcst_unjustified(a: &AtomicBool) {
    a.store(true, Ordering::SeqCst);
}

pub fn seqcst_allowed(a: &AtomicBool) {
    a.store(true, Ordering::SeqCst); // cnalint: allow(no-seqcst-hotpath) -- fixture: pragma demo
}

// cnalint: allow(spin-hint) -- fixture: unused pragma demo
pub fn no_spin_here() {}

pub fn colocated_pragmas(a: &AtomicBool) {
    a.store(true, Ordering::SeqCst); /* cnalint: allow(no-seqcst-hotpath) -- fixture: used */ /* cnalint: allow(spin-hint) -- fixture: co-located, unused */
}
