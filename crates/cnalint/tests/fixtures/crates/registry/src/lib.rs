//! Fixture registry: `UnpinnedLock` is registered without a `size_of`
//! assertion anywhere in the fixture tree (the R6 seed); `PinnedLock` is
//! covered by `tests/compactness.rs`.
pub fn build() {
    let _ = DynLock::new::<UnpinnedLock>();
    let _ = DynLock::new_try::<PinnedLock>();
}
