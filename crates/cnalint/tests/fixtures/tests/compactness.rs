//! Pins the fixture lock sizes; `PinnedLock` is covered, `UnpinnedLock`
//! deliberately is not.
pub fn pin() {
    let _ = core::mem::size_of::<PinnedLock>();
}
