//! A minimal Rust lexer: just enough token structure for line-oriented
//! lock-discipline rules, with no dependencies.
//!
//! The lexer understands the parts of Rust surface syntax that would
//! otherwise produce false matches in a text scan: line comments, (nested)
//! block comments, string/raw-string/byte-string literals, character
//! literals vs. lifetimes, and numeric literals. Everything else becomes
//! identifier or punctuation tokens tagged with their 1-based line number.
//! Comments are kept in a separate per-line map so rules can reason about
//! comment adjacency (`// SAFETY:`) and pragmas (`// cnalint: allow(...)`).

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String, raw string, byte string, char or numeric literal.
    Literal,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (a single char for punctuation).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` when this is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// `true` when this is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// A comment, attributed to every line it touches.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line this comment fragment sits on.
    pub line: u32,
    /// The comment text of that line (without the `//` / `/*` markers).
    pub text: String,
}

/// Lexer output: code tokens plus per-line comment fragments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// Comment fragments, one entry per (line, text) pair; a block comment
    /// spanning lines produces one entry per line.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Concatenated comment text on `line`, or `None` when the line carries
    /// no comment.
    pub fn comment_on(&self, line: u32) -> Option<String> {
        let parts: Vec<&str> = self
            .comments
            .iter()
            .filter(|c| c.line == line)
            .map(|c| c.text.as_str())
            .collect();
        if parts.is_empty() {
            None
        } else {
            Some(parts.join(" "))
        }
    }

    /// `true` when any code token starts on `line`.
    pub fn code_on(&self, line: u32) -> bool {
        // Tokens are in line order; a binary search keeps rules O(log n).
        self.toks
            .binary_search_by(|t| {
                use std::cmp::Ordering::*;
                if t.line < line {
                    Less
                } else if t.line > line {
                    Greater
                } else {
                    Equal
                }
            })
            .is_ok()
    }
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs simply consume the rest of the input (the real compiler is the
/// authority on validity; the linter only needs consistent structure).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let push_comment = |out: &mut Lexed, line: u32, text: &str| {
        out.comments.push(Comment {
            line,
            text: text.trim().to_string(),
        });
    };

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                // Line comment (incl. `///` and `//!` docs).
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                let text: String = b[start..j].iter().collect();
                let text = text.trim_start_matches(['/', '!']).to_string();
                push_comment(&mut out, line, &text);
                i = j;
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                // Block comment, possibly nested, attributed line by line.
                let mut depth = 1usize;
                let mut j = i + 2;
                let mut frag = String::new();
                while j < b.len() && depth > 0 {
                    if b[j] == '/' && j + 1 < b.len() && b[j + 1] == '*' {
                        depth += 1;
                        frag.push_str("/*");
                        j += 2;
                    } else if b[j] == '*' && j + 1 < b.len() && b[j + 1] == '/' {
                        depth -= 1;
                        if depth > 0 {
                            frag.push_str("*/");
                        }
                        j += 2;
                    } else if b[j] == '\n' {
                        push_comment(&mut out, line, &frag);
                        frag.clear();
                        line += 1;
                        j += 1;
                    } else {
                        frag.push(b[j]);
                        j += 1;
                    }
                }
                push_comment(&mut out, line, &frag);
                i = j;
            }
            '"' => {
                let (j, nl) = skip_string(&b, i + 1);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("\"…\""),
                    line,
                });
                line += nl;
                i = j;
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                let (j, nl, text_kind) = skip_raw_or_byte(&b, i);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: text_kind,
                    line,
                });
                line += nl;
                i = j;
            }
            '\'' => {
                // Char literal or lifetime. A lifetime is `'` + ident not
                // followed by a closing quote; a char literal always has a
                // closing quote within a few chars (escapes included).
                if is_lifetime(&b, i) {
                    let mut j = i + 1;
                    let mut name = String::new();
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        name.push(b[j]);
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: name,
                        line,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    if j < b.len() && b[j] == '\\' {
                        j += 2;
                        // Long escapes (`\u{...}`, `\x41`) run to the quote.
                        while j < b.len() && b[j] != '\'' {
                            j += 1;
                        }
                    } else if j < b.len() {
                        j += 1;
                    }
                    if j < b.len() && b[j] == '\'' {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text: String::from("'…'"),
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                let text: String = b[start..j].iter().collect();
                let kind = if c.is_ascii_digit() {
                    TokKind::Literal
                } else {
                    TokKind::Ident
                };
                out.toks.push(Tok { kind, text, line });
                i = j;
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Skips past a `"`-terminated string starting *after* the opening quote.
/// Returns (next index, newlines consumed).
fn skip_string(b: &[char], mut j: usize) -> (usize, u32) {
    let mut nl = 0;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '"' => return (j + 1, nl),
            '\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, nl)
}

/// `true` when position `i` starts `r"`, `r#"`, `br"`, `b"`, `br#"` …
fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j < b.len() && b[j] == 'r' {
        j += 1;
        while j < b.len() && b[j] == '#' {
            j += 1;
        }
    }
    j < b.len() && b[j] == '"' && j > i
}

/// Skips a raw/byte string starting at `i`. Returns (next index, newlines,
/// placeholder text).
fn skip_raw_or_byte(b: &[char], i: usize) -> (usize, u32, String) {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    let raw = j < b.len() && b[j] == 'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < b.len() && b[j] == '"');
    j += 1; // opening quote
    let mut nl = 0u32;
    if raw {
        // Scan for `"` followed by `hashes` hashes; no escapes in raw.
        while j < b.len() {
            if b[j] == '"' {
                let mut k = j + 1;
                let mut h = 0usize;
                while k < b.len() && b[k] == '#' && h < hashes {
                    h += 1;
                    k += 1;
                }
                if h == hashes {
                    return (k, nl, String::from("r\"…\""));
                }
            }
            if b[j] == '\n' {
                nl += 1;
            }
            j += 1;
        }
        (j, nl, String::from("r\"…\""))
    } else {
        let (k, n) = skip_string(b, j);
        (k, n, String::from("b\"…\""))
    }
}

/// `true` when the `'` at `i` begins a lifetime rather than a char literal.
fn is_lifetime(b: &[char], i: usize) -> bool {
    let Some(&first) = b.get(i + 1) else {
        return false;
    };
    if !(first.is_alphabetic() || first == '_') {
        return false;
    }
    // `'a'` is a char; `'a` followed by non-quote is a lifetime. Identify by
    // scanning the identifier and checking for a closing quote.
    let mut j = i + 1;
    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
        j += 1;
    }
    !(j < b.len() && b[j] == '\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts_with_lines() {
        let lx = lex("let x = 1;\nfoo(x)\n");
        let idents: Vec<_> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(idents, vec![("let", 1), ("x", 1), ("foo", 2), ("x", 2)]);
    }

    #[test]
    fn comments_are_not_code() {
        let lx = lex("// Ordering::SeqCst in a comment\nlet x = 0; // trailing\n");
        assert!(!lx.toks.iter().any(|t| t.text.contains("SeqCst")));
        assert!(lx.comment_on(1).unwrap().contains("SeqCst"));
        assert!(lx.comment_on(2).unwrap().contains("trailing"));
        assert!(lx.code_on(2));
        assert!(!lx.code_on(1));
    }

    #[test]
    fn nested_block_comments_and_strings() {
        let lx = lex("/* a /* nested */ still comment */ let s = \"unsafe { Ordering::SeqCst }\";");
        assert!(!lx.toks.iter().any(|t| t.text == "SeqCst"));
        assert!(lx.toks.iter().any(|t| t.is_ident("let")));
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let lx = lex("let r = r#\"unsafe \" quote\"#; let c = 'x'; fn f<'a>(v: &'a str) {}");
        assert!(!lx.toks.iter().any(|t| t.text == "unsafe"));
        let lifetimes = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let lx = lex("let s = \"a\nb\nc\";\nfinal_token");
        let last = lx.toks.last().unwrap();
        assert_eq!(last.text, "final_token");
        assert_eq!(last.line, 4);
    }

    #[test]
    fn char_escape_is_not_a_lifetime() {
        let lx = lex("let tab = '\\t'; let nl = '\\n'; while x {}");
        assert!(lx.toks.iter().any(|t| t.is_ident("while")));
    }
}
