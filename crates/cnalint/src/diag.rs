//! Diagnostics: severities, spans, and the human/JSON renderers.

use std::fmt;

/// Diagnostic severity. Warnings do not fail the run unless promoted with
/// `-D warnings` (mirroring rustc's flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; exit code stays 0 unless warnings are denied.
    Warning,
    /// Violation; exit code 1.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding, anchored to a file:line span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (`safety-comments`, `ordering-audit-drift`, …).
    pub rule: &'static str,
    /// Severity before any `-D warnings` promotion.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line. 0 means "whole file" (e.g. a missing audit table).
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(rule: &'static str, file: &str, line: u32, message: String) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            message,
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(rule: &'static str, file: &str, line: u32, message: String) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Warning,
            file: file.to_string(),
            line,
            message,
        }
    }

    /// `file:line` (or just `file` for whole-file findings).
    pub fn span(&self) -> String {
        if self.line == 0 {
            self.file.clone()
        } else {
            format!("{}:{}", self.file, self.line)
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}: {}",
            self.severity,
            self.rule,
            self.span(),
            self.message
        )
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full diagnostic set as a single JSON document.
pub fn render_json(diags: &[Diagnostic], files_scanned: usize, deny_warnings: bool) -> String {
    let mut out = String::from("{\n  \"tool\": \"cnalint\",\n  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            json_escape(d.rule),
            d.severity,
            json_escape(&d.file),
            d.line,
            json_escape(&d.message),
            if i + 1 == diags.len() { "" } else { "," }
        ));
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    out.push_str(&format!(
        "  ],\n  \"summary\": {{\"errors\": {errors}, \"warnings\": {warnings}, \"files\": {files_scanned}, \"deny_warnings\": {deny_warnings}}}\n}}\n",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_rule_and_span() {
        let d = Diagnostic::error("spin-hint", "crates/locks/src/x.rs", 7, "busy loop".into());
        assert_eq!(
            d.to_string(),
            "error[spin-hint]: crates/locks/src/x.rs:7: busy loop"
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let diags = vec![
            Diagnostic::error("cmpxchg-pairs", "a.rs", 1, "bad \"pair\"".into()),
            Diagnostic::warning("unused-allow", "b.rs", 2, "line1\nline2".into()),
        ];
        let json = render_json(&diags, 2, false);
        assert!(json.contains("bad \\\"pair\\\""));
        assert!(json.contains("line1\\nline2"));
        assert!(json.contains("\"errors\": 1, \"warnings\": 1, \"files\": 2"));
    }

    #[test]
    fn whole_file_span_omits_line() {
        let d = Diagnostic::error("ordering-audit-drift", "docs/orderings.md", 0, "m".into());
        assert_eq!(d.span(), "docs/orderings.md");
    }
}
