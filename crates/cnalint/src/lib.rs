//! `cnalint` — a dependency-free lock-discipline static analyzer.
//!
//! The concurrency discipline this workspace runs on (every `Ordering::`
//! justified in `docs/orderings.md`, every `unsafe` explained, legal
//! compare-exchange pairs, paced spin loops, no stray `SeqCst`, pinned lock
//! sizes) used to be enforced by review. `cnalint` turns it into a CI gate:
//! an own lightweight Rust lexer plus six line-anchored rules, with per-rule
//! allow pragmas so every exception carries a written reason.
//!
//! Entry points: the `cnalint` binary, `lockbench lint`, or [`run_check`]
//! from tests.

pub mod audit;
pub mod diag;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod scan;

use std::io;
use std::path::{Path, PathBuf};

use diag::{Diagnostic, Severity};

/// Check configuration.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Audit doc path, relative to `root`.
    pub audit_doc: String,
    /// When set, only these canonical rule ids run (meta rules always run).
    pub only_rules: Option<Vec<&'static str>>,
    /// Promote warnings to errors for the exit code.
    pub deny_warnings: bool,
}

impl Options {
    /// Default options rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Options {
            root: root.into(),
            audit_doc: "docs/orderings.md".to_string(),
            only_rules: None,
            deny_warnings: false,
        }
    }
}

/// Result of a check run.
#[derive(Debug)]
pub struct Outcome {
    /// All diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of Rust files scanned.
    pub files_scanned: usize,
    /// Whether warnings were promoted.
    pub deny_warnings: bool,
}

impl Outcome {
    /// Error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Process exit code: 0 clean, 1 violations (warnings count when
    /// `deny_warnings`). Internal errors exit 2 before an [`Outcome`]
    /// exists.
    pub fn exit_code(&self) -> i32 {
        let failing = if self.deny_warnings {
            self.diagnostics.len()
        } else {
            self.errors().count()
        };
        if failing > 0 {
            1
        } else {
            0
        }
    }

    /// Diagnostics with a given rule id (test convenience).
    pub fn by_rule(&self, rule: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }
}

/// Scans the workspace and runs every enabled rule, then applies allow
/// pragmas (suppressing matches, warning on unused ones).
pub fn run_check(opts: &Options) -> io::Result<Outcome> {
    let ws = scan::scan(&opts.root)?;
    let enabled = |rule: &'static str| -> bool {
        opts.only_rules.as_ref().is_none_or(|rs| rs.contains(&rule))
    };

    let mut diags: Vec<Diagnostic> = Vec::new();
    if enabled(rules::R1) {
        let sites = audit::extract_sites(&ws);
        let doc_path = opts.root.join(&opts.audit_doc);
        let doc_text = audit::read_doc(&doc_path);
        audit::check(&sites, doc_text.as_deref(), &opts.audit_doc, &mut diags);
    }
    rules::run_local(&ws, &enabled, &mut diags);

    // Pragma pass: malformed pragmas are errors; well-formed ones suppress
    // matching diagnostics on their target line (or file); pragmas that
    // suppressed nothing are warned about — unless their rule was filtered
    // out of this run, in which case silence is not evidence of uselessness.
    for f in &ws.files {
        diags.extend(f.pragmas.bad.iter().cloned());
    }
    let mut kept: Vec<Diagnostic> = Vec::new();
    // Keyed by (file, pragma line, rule): two pragmas for *different* rules
    // can share a line (block comments), and a used one must not shadow an
    // unused co-located neighbour.
    let mut used: Vec<(&str, u32, &str)> = Vec::new();
    for d in diags {
        let suppressed = ws
            .files
            .iter()
            .find(|f| f.rel == d.file)
            .map(|f| {
                f.pragmas
                    .allows
                    .iter()
                    .filter(|p| p.rule == d.rule && (p.file_wide || p.applies_to == d.line))
                    .map(|p| {
                        used.push((&f.rel, p.line, &p.rule));
                    })
                    .count()
                    > 0
            })
            .unwrap_or(false);
        if !suppressed {
            kept.push(d);
        }
    }
    for f in &ws.files {
        for p in &f.pragmas.allows {
            if !enabled(match_static(&p.rule)) {
                continue;
            }
            if !used.contains(&(f.rel.as_str(), p.line, p.rule.as_str())) {
                kept.push(Diagnostic::warning(
                    rules::UNUSED_ALLOW,
                    &f.rel,
                    p.line,
                    format!(
                        "allow pragma for `{}` suppressed nothing; remove it",
                        p.rule
                    ),
                ));
            }
        }
    }

    kept.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(Outcome {
        diagnostics: kept,
        files_scanned: ws.files.len(),
        deny_warnings: opts.deny_warnings,
    })
}

/// Maps a pragma's owned rule string back to the static id (pragmas only
/// store canonical ids, so this lookup always succeeds for valid pragmas).
fn match_static(rule: &str) -> &'static str {
    rules::canonical_id(rule).unwrap_or(rules::BAD_PRAGMA)
}

/// Regenerates the audit table in the audit doc from the current source
/// tree, preserving existing tags and notes. Returns the number of rows.
pub fn run_audit_write(root: &Path, audit_doc: &str) -> Result<usize, String> {
    let ws = scan::scan(root).map_err(|e| format!("scan failed: {e}"))?;
    let sites = audit::extract_sites(&ws);
    let doc_path = root.join(audit_doc);
    let old = audit::read_doc(&doc_path)
        .ok_or_else(|| format!("audit doc {audit_doc} not found under {}", root.display()))?;
    let new = audit::rewrite_doc(&sites, &old)?;
    std::fs::write(&doc_path, new).map_err(|e| format!("writing {audit_doc}: {e}"))?;
    Ok(sites.len())
}

/// Renders diagnostics for terminal output.
pub fn render_human(out: &Outcome) -> String {
    let mut s = String::new();
    for d in &out.diagnostics {
        s.push_str(&d.to_string());
        s.push('\n');
    }
    let errors = out.errors().count();
    let warnings = out.diagnostics.len() - errors;
    s.push_str(&format!(
        "cnalint: {} files scanned, {errors} errors, {warnings} warnings\n",
        out.files_scanned
    ));
    s
}

/// Renders diagnostics as JSON.
pub fn render_json(out: &Outcome) -> String {
    diag::render_json(&out.diagnostics, out.files_scanned, out.deny_warnings)
}
