//! R6 `lock-word-compactness`: every lock type registered through the
//! registry's `DynLock::new::<T>()` / `DynLock::new_try::<T>()` must have a
//! pinned `size_of::<T>()` assertion somewhere in the workspace — the hook
//! `tests/compactness.rs` provides. A registered lock without a size pin can
//! silently bloat its lock word, which is the exact regression the paper's
//! compactness table exists to prevent.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::rules::R6;
use crate::scan::Workspace;

/// Runs R6: collects registered types from any `registry/src/lib.rs` in the
/// workspace, then demands a `size_of::<T` mention for each.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    // type name → (registry file, registration line)
    let mut registered: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for f in ws
        .files
        .iter()
        .filter(|f| f.rel.ends_with("registry/src/lib.rs"))
    {
        let toks = &f.lx.toks;
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("DynLock") {
                continue;
            }
            // DynLock :: new|new_try :: < Type
            let path = toks.get(i + 1..i + 7);
            let Some([c1, c2, method, c3, c4, lt]) = path else {
                continue;
            };
            if c1.is_punct(':')
                && c2.is_punct(':')
                && (method.is_ident("new") || method.is_ident("new_try"))
                && c3.is_punct(':')
                && c4.is_punct(':')
                && lt.is_punct('<')
            {
                if let Some(ty) = toks.get(i + 7) {
                    registered
                        .entry(ty.text.clone())
                        .or_insert((f.rel.clone(), ty.line));
                }
            }
        }
    }

    for (ty, (file, line)) in &registered {
        if !has_size_pin(ws, ty) {
            diags.push(Diagnostic::error(
                R6,
                file,
                *line,
                format!(
                    "registered lock type `{ty}` has no pinned `size_of::<{ty}>()` assertion \
                     anywhere in the workspace (add it to tests/compactness.rs)"
                ),
            ));
        }
    }
}

/// `true` when any scanned file contains `size_of` with `ty` among the next
/// few tokens (covers `size_of::<Ty>()` and `size_of::<Ty<A>>()`).
fn has_size_pin(ws: &Workspace, ty: &str) -> bool {
    ws.files.iter().any(|f| {
        let toks = &f.lx.toks;
        toks.iter().enumerate().any(|(i, t)| {
            t.is_ident("size_of")
                && toks[i + 1..toks.len().min(i + 8)]
                    .iter()
                    .any(|n| n.is_ident(ty))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::load_source;
    use std::path::PathBuf;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: PathBuf::from("."),
            files: files
                .into_iter()
                .map(|(rel, src)| load_source(rel, src))
                .collect(),
        }
    }

    #[test]
    fn pinned_type_passes_unpinned_fails() {
        let w = ws(vec![
            (
                "crates/registry/src/lib.rs",
                "fn build() { let _ = DynLock::new::<McsLock>(); let _ = DynLock::new_try::<TasLock>(); }",
            ),
            (
                "tests/compactness.rs",
                "fn t() { assert_eq!(size_of::<McsLock>(), 8); }",
            ),
        ]);
        let mut diags = Vec::new();
        run(&w, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`TasLock`"));
        assert_eq!(diags[0].file, "crates/registry/src/lib.rs");
    }

    #[test]
    fn generic_size_pin_counts() {
        let w = ws(vec![
            (
                "crates/registry/src/lib.rs",
                "fn build() { let _ = DynLock::new::<HmcsLock>(); }",
            ),
            (
                "crates/locks/src/hmcs.rs",
                "fn t() { assert_eq!(core::mem::size_of::<HmcsLock<StdAtomics>>(), 32); }",
            ),
        ]);
        let mut diags = Vec::new();
        run(&w, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn no_registry_file_means_no_findings() {
        let w = ws(vec![("crates/locks/src/mcs.rs", "fn f() {}")]);
        let mut diags = Vec::new();
        run(&w, &mut diags);
        assert!(diags.is_empty());
    }
}
