//! The rule registry: ids, aliases, one-line summaries, and dispatch.
//!
//! Rule `ordering-audit-drift` (R1) lives in [`crate::audit`] because it
//! needs the audit doc besides the source tree; every other rule is a pure
//! function of the scanned workspace.

pub mod cmpxchg;
pub mod compact;
pub mod safety;
pub mod seqcst;
pub mod spin;

use crate::diag::Diagnostic;
use crate::scan::Workspace;

/// R1: every `Ordering::` site in the lock crates must have a justified row
/// in the audit table of `docs/orderings.md`, and vice versa.
pub const R1: &str = "ordering-audit-drift";
/// R2: `compare_exchange` success/failure ordering pairs must be legal and
/// the failure ordering must not be stronger than the success ordering.
pub const R2: &str = "cmpxchg-pairs";
/// R3: every `unsafe` block / impl / fn needs an adjacent `// SAFETY:`
/// comment or a `# Safety` doc section.
pub const R3: &str = "safety-comments";
/// R4: spin-wait loops over atomics must pace themselves (spin hint, parked
/// wait, or backoff) instead of burning the bus.
pub const R4: &str = "spin-hint";
/// R5: `SeqCst` in the lock hot paths requires an explicit allow pragma.
pub const R5: &str = "no-seqcst-hotpath";
/// R6: every lock type registered in the registry must have a pinned
/// `size_of` assertion somewhere in the workspace.
pub const R6: &str = "lock-word-compactness";
/// Meta: malformed `cnalint:` pragma.
pub const BAD_PRAGMA: &str = "bad-pragma";
/// Meta: an allow pragma that suppressed nothing.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// The six real rules, in numbering order.
pub const ALL_IDS: [&str; 6] = [R1, R2, R3, R4, R5, R6];

/// Metadata for `cnalint rules` and the docs.
pub struct RuleInfo {
    /// Canonical kebab-case id.
    pub id: &'static str,
    /// Short numeric alias (`r1` …).
    pub alias: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Rule metadata table.
pub const RULES: [RuleInfo; 6] = [
    RuleInfo {
        id: R1,
        alias: "r1",
        summary: "every Ordering:: site in the lock crates matches a justified audit-table row (both directions)",
    },
    RuleInfo {
        id: R2,
        alias: "r2",
        summary: "compare_exchange failure ordering is legal and not stronger than the success ordering",
    },
    RuleInfo {
        id: R3,
        alias: "r3",
        summary: "unsafe blocks/impls/fns carry an adjacent SAFETY comment or # Safety doc",
    },
    RuleInfo {
        id: R4,
        alias: "r4",
        summary: "spin-wait loops over atomics pace themselves (spin hint, backoff, or parked wait)",
    },
    RuleInfo {
        id: R5,
        alias: "r5",
        summary: "SeqCst in the lock hot paths requires an explicit allow pragma",
    },
    RuleInfo {
        id: R6,
        alias: "r6",
        summary: "every registry-registered lock type has a pinned size_of assertion",
    },
];

/// Resolves a user-supplied rule name (canonical id, `rN` alias, or a meta
/// rule id) to its canonical id.
pub fn canonical_id(name: &str) -> Option<&'static str> {
    let name = name.trim();
    for r in &RULES {
        if name == r.id || name.eq_ignore_ascii_case(r.alias) {
            return Some(r.id);
        }
    }
    if name == BAD_PRAGMA {
        return Some(BAD_PRAGMA);
    }
    if name == UNUSED_ALLOW {
        return Some(UNUSED_ALLOW);
    }
    None
}

/// Runs every workspace-local rule (R2–R6) that `enabled` admits.
pub fn run_local(
    ws: &Workspace,
    enabled: &dyn Fn(&'static str) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    if enabled(R2) {
        cmpxchg::run(ws, diags);
    }
    if enabled(R3) {
        safety::run(ws, diags);
    }
    if enabled(R4) {
        spin::run(ws, diags);
    }
    if enabled(R5) {
        seqcst::run(ws, diags);
    }
    if enabled(R6) {
        compact::run(ws, diags);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_resolve() {
        assert_eq!(canonical_id("r1"), Some(R1));
        assert_eq!(canonical_id("R5"), Some(R5));
        assert_eq!(canonical_id("safety-comments"), Some(R3));
        assert_eq!(canonical_id("unused-allow"), Some(UNUSED_ALLOW));
        assert_eq!(canonical_id("nope"), None);
    }
}
