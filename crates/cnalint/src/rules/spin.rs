//! R4 `spin-hint`: a `while` loop whose condition polls an atomic `load`
//! must pace itself — `hint::spin_loop()`, a registered park/backoff call,
//! or an early exit — instead of hammering the coherence fabric.
//!
//! Scoped to the lock crates: spin loops elsewhere (tests, harnesses) are
//! throughput fixtures, not hot paths.

use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::rules::R4;
use crate::scan::{SourceFile, Workspace};

/// Identifiers that count as pacing the loop. `spin_until` and friends park
/// under the model-checked atomics family, `spin`/`cpu_relax`/`spin_loop`
/// are the architectural hints, and the park/yield entries cover OS-assisted
/// waiting.
const PACERS: [&str; 12] = [
    "spin_loop",
    "cpu_relax",
    "spin_hint",
    "spin_until",
    "spin_until_paced",
    "spin",
    "snooze",
    "backoff",
    "yield_now",
    "park",
    "park_timeout",
    "wait",
];

/// Runs R4 over the lock-scope files.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for f in ws.files.iter().filter(|f| f.in_lock_scope()) {
        run_file(f, diags);
    }
}

fn run_file(f: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let toks = &f.lx.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("while") {
            continue;
        }
        // Condition: tokens up to the body `{` at bracket depth 0.
        let Some(body_open) = condition_end(toks, i + 1) else {
            continue;
        };
        let cond = &toks[i + 1..body_open];
        if !cond.iter().any(|t| t.is_ident("load")) {
            continue;
        }
        // Pacing in the condition itself (`while !paced_poll()`) counts.
        if has_pacer(cond) {
            continue;
        }
        let Some(body_close) = matching_brace(toks, body_open) else {
            continue;
        };
        let body = &toks[body_open + 1..body_close];
        let paced = has_pacer(body);
        let exits = body
            .iter()
            .any(|t| t.is_ident("break") || t.is_ident("return"));
        if !paced && !exits {
            diags.push(Diagnostic::error(
                R4,
                &f.rel,
                t.line,
                "spin-wait loop over an atomic load without `hint::spin_loop()`, a registered \
                 park/backoff call, or an early exit"
                    .to_string(),
            ));
        }
    }
}

fn has_pacer(toks: &[Tok]) -> bool {
    toks.iter().any(|t| PACERS.contains(&t.text.as_str()))
}

/// Index of the `{` opening the loop body, skipping over parenthesized /
/// bracketed subexpressions in the condition.
fn condition_end(toks: &[Tok], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(from) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            return Some(j);
        } else if t.is_punct(';') {
            return None;
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::load_source;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let f = load_source("crates/locks/src/x.rs", src);
        let mut diags = Vec::new();
        run_file(&f, &mut diags);
        diags
    }

    #[test]
    fn bare_spin_loop_is_flagged() {
        let d = lint("fn f(a: &AtomicBool) { while a.load(Ordering::Relaxed) {} }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "spin-hint");
    }

    #[test]
    fn hinted_loop_passes() {
        let d = lint(
            "fn f(a: &AtomicBool) { while a.load(Ordering::Relaxed) { std::hint::spin_loop(); } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn backoff_and_yield_pass() {
        let d = lint(
            "fn f(a: &AtomicBool, b: &mut Backoff) { while a.load(Ordering::Relaxed) { b.spin(); } \
             while a.load(Ordering::Relaxed) { std::thread::yield_now(); } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn early_exit_passes() {
        let d = lint(
            "fn f(a: &AtomicBool) -> bool { while a.load(Ordering::Relaxed) { if c() { return false; } } true }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_atomic_while_is_ignored() {
        let d = lint("fn f() { let mut i = 0; while i < 10 { i += 1; } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn out_of_scope_file_is_ignored() {
        let f = load_source(
            "crates/bench/src/x.rs",
            "fn f(a: &AtomicBool) { while a.load(Ordering::Relaxed) {} }",
        );
        let ws = Workspace {
            root: std::path::PathBuf::from("."),
            files: vec![f],
        };
        let mut diags = Vec::new();
        run(&ws, &mut diags);
        assert!(diags.is_empty());
    }
}
