//! R5 `no-seqcst-hotpath`: `SeqCst` in the lock crates is almost always a
//! crutch — the algorithms here are specified in acquire/release terms, and
//! a stray `SeqCst` hides a missing happens-before edge instead of creating
//! the right one (and costs a full fence on weakly-ordered hardware).
//!
//! Legitimate uses (a test-only fence, a deliberately sequentially
//! consistent counter) must carry `// cnalint: allow(no-seqcst-hotpath) --
//! reason`, which turns the exception into an audited artifact.

use crate::diag::Diagnostic;
use crate::rules::R5;
use crate::scan::Workspace;

/// Runs R5 over the lock-scope files. Suppression via pragma happens in the
/// generic pass; this rule just reports every lexical `SeqCst`.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for f in ws.files.iter().filter(|f| f.in_lock_scope()) {
        let toks = &f.lx.toks;
        for w in toks.windows(4) {
            if w[0].is_ident("Ordering")
                && w[1].is_punct(':')
                && w[2].is_punct(':')
                && w[3].is_ident("SeqCst")
            {
                diags.push(Diagnostic::error(
                    R5,
                    &f.rel,
                    w[3].line,
                    "Ordering::SeqCst in a lock crate; restate in acquire/release terms or add \
                     `// cnalint: allow(no-seqcst-hotpath) -- <reason>`"
                        .to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::load_source;
    use std::path::PathBuf;

    fn lint(rel: &str, src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            root: PathBuf::from("."),
            files: vec![load_source(rel, src)],
        };
        let mut diags = Vec::new();
        run(&ws, &mut diags);
        diags
    }

    #[test]
    fn seqcst_in_lock_crate_is_flagged() {
        let d = lint(
            "crates/sync-core/src/x.rs",
            "fn f(a: &AtomicBool) { a.store(true, Ordering::SeqCst); }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-seqcst-hotpath");
    }

    #[test]
    fn seqcst_outside_lock_scope_is_fine() {
        let d = lint(
            "crates/harness/src/x.rs",
            "fn f(a: &AtomicBool) { a.store(true, Ordering::SeqCst); }",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn seqcst_in_comment_or_string_is_fine() {
        let d = lint(
            "crates/locks/src/x.rs",
            "// Ordering::SeqCst would be wrong here.\nfn f() { let _ = \"Ordering::SeqCst\"; }",
        );
        assert!(d.is_empty());
    }
}
