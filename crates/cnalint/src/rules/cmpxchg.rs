//! R2 `cmpxchg-pairs`: validates `compare_exchange` / `compare_exchange_weak`
//! success/failure ordering pairs.
//!
//! Two checks, applied workspace-wide:
//! 1. The failure ordering must be a load ordering — `Release` / `AcqRel`
//!    there panic at runtime.
//! 2. The failure ordering must not be stronger than the success ordering;
//!    a stronger failure ordering is at best confused intent and usually an
//!    Acquire/Relaxed transposition.
//!
//! Call sites whose orderings are not literal `Ordering::` paths (passed
//! through variables or generics) are skipped — the lexical form carries no
//! information there.

use crate::audit::ORDERINGS;
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::rules::R2;
use crate::scan::{SourceFile, Workspace};

/// Strength ranking for the "failure stronger than success" check.
fn rank(ordering: &str) -> u8 {
    match ordering {
        "Relaxed" => 0,
        "Acquire" | "Release" => 1,
        "AcqRel" => 2,
        "SeqCst" => 3,
        _ => 0,
    }
}

/// Runs R2 over every scanned file.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for f in &ws.files {
        run_file(f, diags);
    }
}

fn run_file(f: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let toks = &f.lx.toks;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if !(t.is_ident("compare_exchange") || t.is_ident("compare_exchange_weak")) {
            i += 1;
            continue;
        }
        // Skip to the argument list; `::<...>` turbofish may intervene, and
        // trait declarations (`fn compare_exchange(&self, …, success:
        // Ordering, …)`) are naturally skipped because their parens contain
        // no `Ordering::` paths.
        let Some(open) = (i + 1..toks.len().min(i + 16)).find(|&j| toks[j].is_punct('(')) else {
            i += 1;
            continue;
        };
        let close = match matching_paren(toks, open) {
            Some(c) => c,
            None => {
                i += 1;
                continue;
            }
        };
        let mut orderings: Vec<(&str, u32)> = Vec::new();
        let mut j = open;
        while j + 3 <= close {
            if toks[j].is_ident("Ordering")
                && toks[j + 1].is_punct(':')
                && toks[j + 2].is_punct(':')
                && ORDERINGS.contains(&toks[j + 3].text.as_str())
            {
                orderings.push((toks[j + 3].text.as_str(), toks[j].line));
                j += 4;
            } else {
                j += 1;
            }
        }
        if orderings.len() >= 2 {
            let (success, _) = orderings[orderings.len() - 2];
            let (failure, fline) = orderings[orderings.len() - 1];
            if failure == "Release" || failure == "AcqRel" {
                diags.push(Diagnostic::error(
                    R2,
                    &f.rel,
                    fline,
                    format!(
                        "{}(…, {success}, {failure}): failure ordering `{failure}` is illegal \
                         (the failed load cannot perform a release)",
                        t.text
                    ),
                ));
            } else if rank(failure) > rank(success) {
                diags.push(Diagnostic::error(
                    R2,
                    &f.rel,
                    fline,
                    format!(
                        "{}(…, {success}, {failure}): failure ordering `{failure}` is stronger \
                         than success ordering `{success}` — almost certainly transposed",
                        t.text
                    ),
                ));
            }
        }
        i = close + 1;
    }
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::load_source;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let f = load_source("crates/locks/src/x.rs", src);
        let mut diags = Vec::new();
        run_file(&f, &mut diags);
        diags
    }

    #[test]
    fn legal_pairs_pass() {
        let d = lint(
            "fn f(a: &AtomicUsize) {\n\
             let _ = a.compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed);\n\
             let _ = a.compare_exchange_weak(0, 1, Ordering::AcqRel, Ordering::Acquire);\n\
             let _ = a.compare_exchange(0, 1, Ordering::Release, Ordering::Relaxed);\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn release_failure_is_illegal() {
        let d = lint("fn f(a: &AtomicUsize) { let _ = a.compare_exchange(0, 1, Ordering::Acquire, Ordering::Release); }");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("illegal"));
    }

    #[test]
    fn stronger_failure_than_success_is_flagged() {
        let d = lint("fn f(a: &AtomicUsize) { let _ = a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Acquire); }");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("stronger"));
    }

    #[test]
    fn trait_declarations_are_skipped() {
        let d = lint("trait C { fn compare_exchange(&self, cur: usize, new: usize, success: Ordering, failure: Ordering) -> Result<usize, usize>; }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn variable_orderings_are_skipped() {
        let d = lint("fn f(a: &AtomicUsize, s: Ordering, fl: Ordering) { let _ = a.compare_exchange(0, 1, s, fl); }");
        assert!(d.is_empty(), "{d:?}");
    }
}
