//! R3 `safety-comments`: every `unsafe` construct must justify itself.
//!
//! - `unsafe { … }` blocks need a `// SAFETY:` (or `// SAFETY(test):`)
//!   comment on the same line or attached above the enclosing statement.
//! - `unsafe impl` needs a SAFETY comment attached above.
//! - `unsafe fn` / `unsafe trait` declarations need a `# Safety` doc section
//!   (or SAFETY comment) attached above — except `unsafe fn`s inside trait
//!   impls, whose contract lives on the trait declaration.

use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::rules::R3;
use crate::scan::{SourceFile, Workspace};

/// Runs R3 over every scanned file.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for f in &ws.files {
        run_file(f, diags);
    }
}

/// Block kinds tracked while walking braces.
#[derive(Clone, Copy, PartialEq)]
enum Scope {
    TraitImpl,
    Other,
}

fn run_file(f: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let toks = &f.lx.toks;
    let mut stack: Vec<Scope> = Vec::new();
    // Brace index → scope kind, precomputed so the unsafe walk below can ask
    // "am I inside a trait impl?" cheaply.
    let mut pending_impl: Option<bool> = None; // Some(is_trait_impl) before its `{`
    let mut scope_at: Vec<Scope> = Vec::with_capacity(toks.len());

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        scope_at.push(stack.last().copied().unwrap_or(Scope::Other));
        if t.is_ident("impl") {
            // Trait impl iff a bare `for` appears before the body brace
            // (`for<'a>` HRTBs are `for` followed by `<` and don't count).
            let mut is_trait = false;
            for j in i + 1..toks.len() {
                if toks[j].is_punct('{') || toks[j].is_punct(';') {
                    break;
                }
                if toks[j].is_ident("for") && !toks.get(j + 1).is_some_and(|n| n.is_punct('<')) {
                    is_trait = true;
                    break;
                }
            }
            pending_impl = Some(is_trait);
        } else if t.is_punct('{') {
            let kind = match pending_impl.take() {
                Some(true) => Scope::TraitImpl,
                _ => Scope::Other,
            };
            stack.push(kind);
        } else if t.is_punct('}') {
            stack.pop();
        } else if t.is_punct(';') {
            // `impl Trait for T;` never exists, but a stray `;` cancels any
            // half-tracked impl header (e.g. associated consts).
            if !stack.is_empty() {
                pending_impl = None;
            }
        }
        i += 1;
    }

    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        if next.is_punct('{') {
            if !block_has_safety_comment(f, t.line) {
                diags.push(Diagnostic::error(
                    R3,
                    &f.rel,
                    t.line,
                    "unsafe block without an adjacent `// SAFETY:` comment".to_string(),
                ));
            }
        } else if next.is_ident("impl") {
            if !decl_has_safety_doc(f, t, toks, i) {
                diags.push(Diagnostic::error(
                    R3,
                    &f.rel,
                    t.line,
                    "unsafe impl without a `// SAFETY:` comment attached above".to_string(),
                ));
            }
        } else if next.is_ident("fn") || next.is_ident("trait") {
            // `unsafe fn` in a trait impl inherits the trait's contract.
            if next.is_ident("fn") && scope_at[i] == Scope::TraitImpl {
                continue;
            }
            // `unsafe fn(...)` pointer types have no name after `fn`.
            if next.is_ident("fn") && toks.get(i + 2).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            if !decl_has_safety_doc(f, t, toks, i) {
                diags.push(Diagnostic::error(
                    R3,
                    &f.rel,
                    t.line,
                    format!(
                        "unsafe {} without a `# Safety` doc section or `// SAFETY:` comment",
                        next.text
                    ),
                ));
            }
        }
    }
}

/// `true` when a SAFETY comment is adjacent to the `unsafe {` at `line`:
/// on the line itself, or within the bounded upward scan that steps over
/// the current statement's head lines and attribute lines.
fn block_has_safety_comment(f: &SourceFile, line: u32) -> bool {
    if comment_mentions_safety(f, line) {
        return true;
    }
    let mut m = line.saturating_sub(1);
    let mut steps = 0;
    while m >= 1 && steps < 8 {
        let raw = f.line(m);
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return false;
        }
        if comment_mentions_safety(f, m) {
            return true;
        }
        if f.lx.code_on(m) {
            if trimmed.starts_with("#[") {
                // Attribute: keep scanning above it.
            } else if trimmed.ends_with(';') || trimmed.ends_with('{') || trimmed.ends_with('}') {
                // Statement boundary: the comment above belongs elsewhere.
                return false;
            }
            // Otherwise this line is the head of the same statement
            // (`let guard =` …): keep scanning.
        }
        m -= 1;
        steps += 1;
    }
    false
}

/// `true` when the declaration whose `unsafe` token is `toks[i]` has an
/// attached doc/comment block above it mentioning SAFETY or `# Safety`.
/// The scan walks up through contiguous comment, doc, and attribute lines
/// starting from the declaration's first line (visibility modifiers may put
/// `pub` on the same line as `unsafe`).
fn decl_has_safety_doc(f: &SourceFile, unsafe_tok: &Tok, _toks: &[Tok], _i: usize) -> bool {
    let mut m = unsafe_tok.line.saturating_sub(1);
    while m >= 1 {
        let trimmed = f.line(m).trim();
        let is_attr = trimmed.starts_with("#[") || trimmed.starts_with("#!");
        let comment = f.lx.comment_on(m);
        if let Some(c) = &comment {
            if c.contains("SAFETY") || c.contains("# Safety") {
                return true;
            }
        }
        // Stop once we leave the contiguous doc/attribute block.
        if comment.is_none() && !is_attr {
            return false;
        }
        if f.lx.code_on(m) && !is_attr {
            return false;
        }
        m -= 1;
    }
    false
}

fn comment_mentions_safety(f: &SourceFile, line: u32) -> bool {
    f.lx.comment_on(line)
        .is_some_and(|c| c.contains("SAFETY") || c.contains("# Safety"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::load_source;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let f = load_source("crates/locks/src/x.rs", src);
        let mut diags = Vec::new();
        run_file(&f, &mut diags);
        diags
    }

    #[test]
    fn commented_block_passes_bare_block_fails() {
        let ok = lint("fn f(p: *mut u8) {\n    // SAFETY: p is valid.\n    unsafe { *p = 0 };\n}");
        assert!(ok.is_empty(), "{ok:?}");
        let bad = lint("fn f(p: *mut u8) {\n    unsafe { *p = 0 };\n}");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].line, 2);
    }

    #[test]
    fn comment_above_multiline_statement_head_counts() {
        let ok = lint(
            "fn f(p: *mut u8) {\n    // SAFETY: p is valid.\n    let v =\n        unsafe { *p };\n    drop(v);\n}",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn comment_separated_by_statement_does_not_count() {
        let bad = lint(
            "fn f(p: *mut u8) {\n    // SAFETY: stale.\n    let x = 1;\n    unsafe { *p = x };\n}",
        );
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn unsafe_impl_needs_comment() {
        let ok = lint("// SAFETY: T is plain-old-data.\nunsafe impl Send for X {}");
        assert!(ok.is_empty(), "{ok:?}");
        let bad = lint("struct X;\nunsafe impl Send for X {}");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("unsafe impl"));
    }

    #[test]
    fn unsafe_fn_needs_safety_doc_unless_in_trait_impl() {
        let ok = lint("/// Does things.\n///\n/// # Safety\n/// Caller must own `p`.\npub unsafe fn f(p: *mut u8) {}");
        assert!(ok.is_empty(), "{ok:?}");
        let bad = lint("pub unsafe fn f(p: *mut u8) {}");
        assert_eq!(bad.len(), 1);
        // Trait impls inherit the trait's contract.
        let impl_ok =
            lint("impl RawLock for X {\n    unsafe fn lock(&self, n: &Node) { todo!() }\n}");
        assert!(impl_ok.is_empty(), "{impl_ok:?}");
        // …but inherent impls do not.
        let inherent_bad = lint("impl X {\n    unsafe fn lock(&self) {}\n}");
        assert_eq!(inherent_bad.len(), 1);
    }

    #[test]
    fn safety_test_variant_is_accepted() {
        let ok = lint("fn f(p: *mut u8) {\n    // SAFETY(test): scoped join below.\n    unsafe { *p = 0 };\n}");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn fn_pointer_types_are_ignored() {
        let ok = lint("type Callback = unsafe fn(*mut u8);");
        assert!(ok.is_empty(), "{ok:?}");
    }
}
