//! Workspace discovery: walks the repository, lexes every Rust source file,
//! and classifies files into the scopes the rules care about.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Lexed};
use crate::pragma::{self, Pragmas};

/// One lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across hosts).
    pub rel: String,
    /// Raw source lines (for statement-shape heuristics).
    pub lines: Vec<String>,
    /// Lexed tokens and comments.
    pub lx: Lexed,
    /// Allow pragmas found in this file.
    pub pragmas: Pragmas,
}

impl SourceFile {
    /// 1-based line `n`, or `""` past EOF.
    pub fn line(&self, n: u32) -> &str {
        if n == 0 {
            return "";
        }
        self.lines
            .get((n as usize).saturating_sub(1))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// `true` when this file lives in the ordering-audit scope (the lock
    /// algorithm crates whose every `Ordering::` use must be justified in
    /// `docs/orderings.md`).
    pub fn in_audit_scope(&self) -> bool {
        const SCOPES: [&str; 3] = [
            "crates/locks/src/",
            "crates/core/src/",
            "crates/sync-core/src/",
        ];
        SCOPES.iter().any(|s| self.rel.starts_with(s))
    }

    /// `true` for the hot-path lock crates where `spin-hint` and
    /// `no-seqcst-hotpath` apply (audit scope plus the qspinlock port).
    pub fn in_lock_scope(&self) -> bool {
        self.in_audit_scope() || self.rel.starts_with("crates/qspinlock/src/")
    }
}

/// The scanned workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// All scanned files, sorted by relative path.
    pub files: Vec<SourceFile>,
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];
/// Relative prefixes excluded from the workspace scan (the linter's own test
/// fixtures intentionally contain violations).
const SKIP_PREFIXES: [&str; 1] = ["crates/cnalint/tests/fixtures"];

/// Walks `root`, lexing every `.rs` file outside the skip set.
pub fn scan(root: &Path) -> io::Result<Workspace> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
    })
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = rel_path(root, &path);
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref())
                || SKIP_PREFIXES.iter().any(|p| rel == *p)
                || name.starts_with('.')
            {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let text = fs::read_to_string(&path)?;
            files.push(load_source(&rel, &text));
        }
    }
    Ok(())
}

/// Lexes one file's text into a [`SourceFile`] (exposed for rule tests).
pub fn load_source(rel: &str, text: &str) -> SourceFile {
    let lines: Vec<String> = text.lines().map(String::from).collect();
    let lx = lexer::lex(text);
    let pragmas = pragma::parse(rel, &lx, lines.len() as u32);
    SourceFile {
        rel: rel.to_string(),
        lines,
        lx,
        pragmas,
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_classification() {
        let f = load_source("crates/locks/src/mcs.rs", "fn x() {}");
        assert!(f.in_audit_scope());
        assert!(f.in_lock_scope());
        let q = load_source("crates/qspinlock/src/lib.rs", "fn x() {}");
        assert!(!q.in_audit_scope());
        assert!(q.in_lock_scope());
        let b = load_source("crates/bench/src/cli.rs", "fn x() {}");
        assert!(!b.in_audit_scope());
        assert!(!b.in_lock_scope());
    }

    #[test]
    fn line_accessor_is_one_based_and_total() {
        let f = load_source("a.rs", "first\nsecond\n");
        assert_eq!(f.line(1), "first");
        assert_eq!(f.line(2), "second");
        assert_eq!(f.line(3), "");
        assert_eq!(f.line(0), "");
    }
}
