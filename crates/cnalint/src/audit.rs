//! The memory-ordering audit table: extraction of `Ordering::` sites from
//! the lock crates, and parse/check/regenerate for the machine-readable
//! table in `docs/orderings.md` that rule `ordering-audit-drift` enforces.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::rules;
use crate::scan::{SourceFile, Workspace};

/// Marker opening the machine-readable table in the audit doc.
pub const TABLE_BEGIN: &str = "<!-- cnalint:audit-table:begin -->";
/// Marker closing the machine-readable table.
pub const TABLE_END: &str = "<!-- cnalint:audit-table:end -->";
/// Marker opening the justification-tag glossary.
pub const TAGS_BEGIN: &str = "<!-- cnalint:audit-tags:begin -->";
/// Marker closing the glossary.
pub const TAGS_END: &str = "<!-- cnalint:audit-tags:end -->";

/// The atomic orderings of `std::sync::atomic::Ordering`.
pub const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic operations the extractor attributes orderings to.
const OPS: [&str; 15] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_update",
    "fetch_max",
    "fetch_min",
    "fence",
    "compare_and_swap",
];

/// One `Ordering::<X>` use in source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `Ordering::` token.
    pub line: u32,
    /// `Relaxed` | `Acquire` | `Release` | `AcqRel` | `SeqCst`.
    pub ordering: String,
    /// Attributed atomic op (`load`, `fence`, …) or `-` when unknown.
    pub op: String,
}

/// One row of the audit table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Columns mirroring [`Site`].
    pub site: Site,
    /// Justification tag (must appear in the glossary).
    pub tag: String,
    /// Free-form note.
    pub note: String,
    /// 1-based line of this row inside the audit doc.
    pub doc_line: u32,
}

/// Parsed audit doc.
#[derive(Debug, Default)]
pub struct AuditDoc {
    /// Table rows in document order.
    pub rows: Vec<Row>,
    /// Glossary tag names.
    pub tags: Vec<String>,
    /// Whether the begin/end table markers were both found.
    pub has_table: bool,
}

/// Extracts every `Ordering::<X>` site from audit-scope files, in
/// (file, line) order.
pub fn extract_sites(ws: &Workspace) -> Vec<Site> {
    let mut sites = Vec::new();
    for f in ws.files.iter().filter(|f| f.in_audit_scope()) {
        sites.extend(file_sites(f));
    }
    sites
}

/// Extracts the ordering sites of a single file.
pub fn file_sites(f: &SourceFile) -> Vec<Site> {
    let toks = &f.lx.toks;
    let mut sites = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("Ordering") {
            continue;
        }
        // Match `Ordering :: <X>` (the repo never imports variants bare).
        let Some((a, b, x)) = toks
            .get(i + 1)
            .zip(toks.get(i + 2))
            .zip(toks.get(i + 3))
            .map(|((a, b), x)| (a, b, x))
        else {
            continue;
        };
        if !(a.is_punct(':') && b.is_punct(':') && x.kind == TokKind::Ident) {
            continue;
        }
        if !ORDERINGS.contains(&x.text.as_str()) {
            continue;
        }
        // Attribute to the nearest preceding atomic-op identifier.
        let op = toks[..i]
            .iter()
            .rev()
            .take(40)
            .find(|t| t.kind == TokKind::Ident && OPS.contains(&t.text.as_str()))
            .map(|t| t.text.clone())
            .unwrap_or_else(|| "-".to_string());
        sites.push(Site {
            file: f.rel.clone(),
            line: toks[i].line,
            ordering: x.text.clone(),
            op,
        });
    }
    sites
}

/// Parses the audit doc text (table rows plus tag glossary).
pub fn parse_doc(text: &str) -> AuditDoc {
    let mut doc = AuditDoc::default();
    let mut in_table = false;
    let mut saw_begin = false;
    let mut saw_end = false;
    let mut in_tags = false;
    for (idx, line) in text.lines().enumerate() {
        let n = (idx + 1) as u32;
        let t = line.trim();
        if t == TABLE_BEGIN {
            in_table = true;
            saw_begin = true;
            continue;
        }
        if t == TABLE_END {
            in_table = false;
            saw_end = true;
            continue;
        }
        if t == TAGS_BEGIN {
            in_tags = true;
            continue;
        }
        if t == TAGS_END {
            in_tags = false;
            continue;
        }
        if in_tags {
            // Glossary entries: `- **tag** — description`.
            if let Some(rest) = t.strip_prefix("- ") {
                let tag = rest
                    .trim_start_matches("**")
                    .split("**")
                    .next()
                    .unwrap_or("")
                    .trim();
                if !tag.is_empty() {
                    doc.tags.push(tag.to_string());
                }
            }
        }
        if in_table && t.starts_with('|') {
            let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
            if cells.len() < 5 || cells[0] == "file" || cells[0].starts_with('-') {
                continue;
            }
            let Ok(line_no) = cells[1].parse::<u32>() else {
                continue;
            };
            doc.rows.push(Row {
                site: Site {
                    file: cells[0].to_string(),
                    line: line_no,
                    op: cells[2].to_string(),
                    ordering: cells[3].to_string(),
                },
                tag: cells[4].to_string(),
                note: cells.get(5).unwrap_or(&"").to_string(),
                doc_line: n,
            });
        }
    }
    doc.has_table = saw_begin && saw_end;
    doc
}

/// Multiset key for site/row matching.
fn key(s: &Site) -> (String, u32, String) {
    (s.file.clone(), s.line, s.ordering.clone())
}

/// Checks source sites against the audit doc, both directions, and
/// validates tags. `doc_rel` is the doc's path for diagnostic spans.
pub fn check(sites: &[Site], doc_text: Option<&str>, doc_rel: &str, diags: &mut Vec<Diagnostic>) {
    let Some(text) = doc_text else {
        diags.push(Diagnostic::error(
            rules::R1,
            doc_rel,
            0,
            "ordering audit doc is missing; every Ordering:: site in the lock crates must be \
             justified there (run `cnalint audit --write` to scaffold the table)"
                .to_string(),
        ));
        return;
    };
    let doc = parse_doc(text);
    if !doc.has_table {
        diags.push(Diagnostic::error(
            rules::R1,
            doc_rel,
            0,
            format!("audit table markers `{TABLE_BEGIN}` / `{TABLE_END}` not found"),
        ));
        return;
    }

    // Source → table: every site must have a matching row.
    let mut remaining: HashMap<(String, u32, String), Vec<usize>> = HashMap::new();
    for (i, r) in doc.rows.iter().enumerate() {
        remaining.entry(key(&r.site)).or_default().push(i);
    }
    for s in sites {
        match remaining.get_mut(&key(s)) {
            Some(v) if !v.is_empty() => {
                v.pop();
            }
            _ => diags.push(Diagnostic::error(
                rules::R1,
                &s.file,
                s.line,
                format!(
                    "Ordering::{} ({}) is not recorded in the {doc_rel} audit table; \
                     add a justified row or run `cnalint audit --write`",
                    s.ordering, s.op
                ),
            )),
        }
    }
    // Table → source: leftover rows are stale.
    for idxs in remaining.values() {
        for &i in idxs {
            let r = &doc.rows[i];
            diags.push(Diagnostic::error(
                rules::R1,
                doc_rel,
                r.doc_line,
                format!(
                    "stale audit row: no Ordering::{} at {}:{} (code moved or was deleted; \
                     run `cnalint audit --write`)",
                    r.site.ordering, r.site.file, r.site.line
                ),
            ));
        }
    }
    // Tag discipline: every row tag must be a known glossary tag.
    for r in &doc.rows {
        if r.tag.is_empty() || r.tag == "TODO" {
            diags.push(Diagnostic::error(
                rules::R1,
                doc_rel,
                r.doc_line,
                format!(
                    "audit row for {}:{} has no justification tag",
                    r.site.file, r.site.line
                ),
            ));
        } else if !doc.tags.iter().any(|t| t == &r.tag) {
            diags.push(Diagnostic::error(
                rules::R1,
                doc_rel,
                r.doc_line,
                format!(
                    "audit tag `{}` is not defined in the tag glossary of {doc_rel}",
                    r.tag
                ),
            ));
        }
    }
}

/// Regenerates the audit table from `sites`, preserving tags/notes from the
/// existing doc (matched by (file, ordering) at the exact line, then by
/// nearest line within 40). Returns the new doc text.
pub fn rewrite_doc(sites: &[Site], old_text: &str) -> Result<String, String> {
    let old = parse_doc(old_text);
    if !old.has_table {
        return Err(format!(
            "audit table markers `{TABLE_BEGIN}` / `{TABLE_END}` not found in the doc"
        ));
    }
    let mut used = vec![false; old.rows.len()];
    let mut lookup = |s: &Site| -> (String, String) {
        // Exact line match first.
        if let Some((i, r)) = old.rows.iter().enumerate().find(|(i, r)| {
            !used[*i]
                && r.site.file == s.file
                && r.site.ordering == s.ordering
                && r.site.line == s.line
        }) {
            used[i] = true;
            return (r.tag.clone(), r.note.clone());
        }
        // Then nearest line within 40 (code shifted).
        let best = old
            .rows
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                !used[*i]
                    && r.site.file == s.file
                    && r.site.ordering == s.ordering
                    && r.site.line.abs_diff(s.line) <= 40
            })
            .min_by_key(|(_, r)| r.site.line.abs_diff(s.line));
        if let Some((i, r)) = best {
            used[i] = true;
            return (r.tag.clone(), r.note.clone());
        }
        ("TODO".to_string(), String::new())
    };

    let mut table = String::new();
    table.push_str("| file | line | op | ordering | tag | note |\n");
    table.push_str("|---|---|---|---|---|---|\n");
    for s in sites {
        let (tag, note) = lookup(s);
        table.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            s.file, s.line, s.op, s.ordering, tag, note
        ));
    }

    // Splice between the markers, keeping everything else untouched.
    let begin = old_text.find(TABLE_BEGIN).unwrap() + TABLE_BEGIN.len();
    let end = old_text.find(TABLE_END).unwrap();
    if end < begin {
        return Err("audit table end marker precedes begin marker".to_string());
    }
    Ok(format!(
        "{}\n{}{}",
        &old_text[..begin],
        table,
        &old_text[end..]
    ))
}

/// Reads the audit doc if present.
pub fn read_doc(path: &Path) -> Option<String> {
    fs::read_to_string(path).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::load_source;

    fn doc(rows: &str, tags: &str) -> String {
        format!(
            "# Audit\n{TAGS_BEGIN}\n{tags}{TAGS_END}\n{TABLE_BEGIN}\n| file | line | op | ordering | tag | note |\n|---|---|---|---|---|---|\n{rows}{TABLE_END}\n"
        )
    }

    #[test]
    fn sites_are_extracted_with_ops() {
        let f = load_source(
            "crates/locks/src/x.rs",
            "fn f(a: &AtomicBool) { a.store(true, Ordering::Release); let _ = a.load(Ordering::Acquire); }",
        );
        let sites = file_sites(&f);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].op, "store");
        assert_eq!(sites[0].ordering, "Release");
        assert_eq!(sites[1].op, "load");
    }

    #[test]
    fn matching_table_is_clean() {
        let sites = vec![Site {
            file: "crates/locks/src/x.rs".into(),
            line: 3,
            ordering: "Acquire".into(),
            op: "load".into(),
        }];
        let text = doc(
            "| crates/locks/src/x.rs | 3 | load | Acquire | acq-lock | handoff |\n",
            "- **acq-lock** — acquire pairs with the releasing store\n",
        );
        let mut diags = Vec::new();
        check(&sites, Some(&text), "docs/orderings.md", &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn missing_row_and_stale_row_both_fail() {
        let sites = vec![Site {
            file: "crates/locks/src/x.rs".into(),
            line: 3,
            ordering: "Acquire".into(),
            op: "load".into(),
        }];
        let text = doc(
            "| crates/locks/src/x.rs | 99 | load | Acquire | acq-lock | gone |\n",
            "- **acq-lock** — why\n",
        );
        let mut diags = Vec::new();
        check(&sites, Some(&text), "docs/orderings.md", &mut diags);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().any(|d| d.message.contains("not recorded")));
        assert!(diags.iter().any(|d| d.message.contains("stale audit row")));
    }

    #[test]
    fn unknown_tag_fails() {
        let sites = vec![Site {
            file: "crates/locks/src/x.rs".into(),
            line: 3,
            ordering: "Acquire".into(),
            op: "load".into(),
        }];
        let text = doc(
            "| crates/locks/src/x.rs | 3 | load | Acquire | mystery | |\n",
            "- **acq-lock** — why\n",
        );
        let mut diags = Vec::new();
        check(&sites, Some(&text), "docs/orderings.md", &mut diags);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("`mystery`"));
    }

    #[test]
    fn rewrite_preserves_tags_across_line_shift() {
        let old = doc(
            "| crates/locks/src/x.rs | 3 | load | Acquire | acq-lock | keep me |\n",
            "- **acq-lock** — why\n",
        );
        let sites = vec![Site {
            file: "crates/locks/src/x.rs".into(),
            line: 11,
            ordering: "Acquire".into(),
            op: "load".into(),
        }];
        let new = rewrite_doc(&sites, &old).unwrap();
        assert!(
            new.contains("| crates/locks/src/x.rs | 11 | load | Acquire | acq-lock | keep me |")
        );
        let mut diags = Vec::new();
        check(&sites, Some(&new), "docs/orderings.md", &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
