//! Allow pragmas: `// cnalint: allow(<rule>) -- <reason>`.
//!
//! A trailing pragma (on a line that also carries code) suppresses matching
//! diagnostics on *that* line. A standalone pragma (comment-only line)
//! suppresses matching diagnostics on the next line that carries code.
//! `allow-file(<rule>)` suppresses the rule for the whole file. A reason
//! after ` -- ` is mandatory: pragmas are audit artifacts, not mute buttons.

use crate::diag::Diagnostic;
use crate::lexer::Lexed;
use crate::rules;

/// One parsed allow pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule id this pragma allows.
    pub rule: String,
    /// Line the pragma comment sits on.
    pub line: u32,
    /// Line the pragma applies to (== `line` for trailing pragmas, the next
    /// code line for standalone pragmas). Unused for file-wide pragmas.
    pub applies_to: u32,
    /// `true` for `allow-file(...)`.
    pub file_wide: bool,
    /// Justification text after ` -- `.
    pub reason: String,
}

/// Pragmas found in one file, plus any malformed-pragma diagnostics.
#[derive(Debug, Default)]
pub struct Pragmas {
    /// Well-formed pragmas.
    pub allows: Vec<Pragma>,
    /// `bad-pragma` diagnostics for malformed ones.
    pub bad: Vec<Diagnostic>,
}

/// Extracts pragmas from the lexed comments of `file`.
pub fn parse(file: &str, lx: &Lexed, line_count: u32) -> Pragmas {
    let mut out = Pragmas::default();
    for c in &lx.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("cnalint:") else {
            continue;
        };
        let rest = rest.trim();
        let (file_wide, body) = if let Some(b) = rest.strip_prefix("allow-file") {
            (true, b)
        } else if let Some(b) = rest.strip_prefix("allow") {
            (false, b)
        } else {
            out.bad.push(Diagnostic::error(
                rules::BAD_PRAGMA,
                file,
                c.line,
                format!("unrecognized cnalint pragma `{text}` (expected `allow(<rule>) -- reason` or `allow-file(<rule>) -- reason`)"),
            ));
            continue;
        };
        let body = body.trim();
        let Some((rule, after)) = body
            .strip_prefix('(')
            .and_then(|b| b.split_once(')'))
            .map(|(r, a)| (r.trim().to_string(), a.trim()))
        else {
            out.bad.push(Diagnostic::error(
                rules::BAD_PRAGMA,
                file,
                c.line,
                format!("malformed cnalint pragma `{text}`: missing `(<rule>)`"),
            ));
            continue;
        };
        let Some(canonical) = rules::canonical_id(&rule) else {
            out.bad.push(Diagnostic::error(
                rules::BAD_PRAGMA,
                file,
                c.line,
                format!(
                    "unknown rule `{rule}` in cnalint pragma (known: {})",
                    rules::ALL_IDS.join(", ")
                ),
            ));
            continue;
        };
        let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            out.bad.push(Diagnostic::error(
                rules::BAD_PRAGMA,
                file,
                c.line,
                format!(
                    "cnalint pragma for `{canonical}` has no ` -- reason`; justify the exception"
                ),
            ));
            continue;
        }
        let applies_to = if file_wide || lx.code_on(c.line) {
            c.line
        } else {
            // Standalone pragma: applies to the next line carrying code.
            (c.line + 1..=line_count)
                .find(|&l| lx.code_on(l))
                .unwrap_or(c.line)
        };
        out.allows.push(Pragma {
            rule: canonical.to_string(),
            line: c.line,
            applies_to,
            file_wide,
            reason: reason.to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Pragmas {
        let lx = lex(src);
        parse("t.rs", &lx, src.lines().count() as u32)
    }

    #[test]
    fn trailing_pragma_applies_to_its_own_line() {
        let p = parse_src("let x = 0; // cnalint: allow(no-seqcst-hotpath) -- test fence\n");
        assert_eq!(p.allows.len(), 1);
        assert_eq!(p.allows[0].applies_to, 1);
        assert!(!p.allows[0].file_wide);
    }

    #[test]
    fn standalone_pragma_applies_to_next_code_line() {
        let p = parse_src(
            "// cnalint: allow(r5) -- benchmark barrier\n\n// other comment\nlet x = 0;\n",
        );
        assert_eq!(p.allows.len(), 1);
        assert_eq!(p.allows[0].rule, "no-seqcst-hotpath");
        assert_eq!(p.allows[0].applies_to, 4);
    }

    #[test]
    fn missing_reason_is_bad_pragma() {
        let p = parse_src("// cnalint: allow(spin-hint)\n");
        assert!(p.allows.is_empty());
        assert_eq!(p.bad.len(), 1);
        assert!(p.bad[0].message.contains("no ` -- reason`"));
    }

    #[test]
    fn unknown_rule_is_bad_pragma() {
        let p = parse_src("// cnalint: allow(made-up) -- because\n");
        assert_eq!(p.bad.len(), 1);
        assert!(p.bad[0].message.contains("unknown rule"));
    }

    #[test]
    fn allow_file_is_file_wide() {
        let p = parse_src("// cnalint: allow-file(safety-comments) -- generated code\n");
        assert_eq!(p.allows.len(), 1);
        assert!(p.allows[0].file_wide);
    }
}
