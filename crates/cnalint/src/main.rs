//! The `cnalint` command-line interface.
//!
//! ```text
//! cnalint [check] [--root DIR] [--format human|json] [-D warnings] [--rule ID]…
//! cnalint audit [--write] [--root DIR]
//! cnalint rules
//! ```
//!
//! Exit codes mirror `lockbench diff`: 0 clean, 1 violations found,
//! 2 usage or internal error.

use std::path::PathBuf;
use std::process::ExitCode;

use cnalint::{rules, Options};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("cnalint: error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  cnalint [check] [--root DIR] [--format human|json] [-D warnings] [--rule ID]...
  cnalint audit [--write] [--root DIR]
  cnalint rules";

fn run(args: &[String]) -> Result<u8, String> {
    let (cmd, rest) = match args.first().map(String::as_str) {
        Some("check") => ("check", &args[1..]),
        Some("audit") => ("audit", &args[1..]),
        Some("rules") => ("rules", &args[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            return Ok(0);
        }
        _ => ("check", args),
    };

    let mut root = default_root();
    let mut format = "human".to_string();
    let mut deny_warnings = false;
    let mut only: Vec<&'static str> = Vec::new();
    let mut write = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--format" => {
                format = it.next().ok_or("--format needs a value")?.clone();
                if format != "human" && format != "json" {
                    return Err(format!("unknown format `{format}` (human|json)"));
                }
            }
            "-D" => {
                let what = it.next().ok_or("-D needs a value")?;
                if what != "warnings" {
                    return Err(format!("unknown -D target `{what}` (only `warnings`)"));
                }
                deny_warnings = true;
            }
            "--deny-warnings" => deny_warnings = true,
            "--rule" => {
                let name = it.next().ok_or("--rule needs a value")?;
                let id = rules::canonical_id(name)
                    .ok_or_else(|| format!("unknown rule `{name}` (try `cnalint rules`)"))?;
                only.push(id);
            }
            "--write" if cmd == "audit" => write = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    match cmd {
        "rules" => {
            for r in &rules::RULES {
                println!("{:24} ({}): {}", r.id, r.alias, r.summary);
            }
            println!(
                "{:24}     : malformed `cnalint:` pragma (always on)",
                rules::BAD_PRAGMA
            );
            println!(
                "{:24}     : allow pragma that suppressed nothing (warning)",
                rules::UNUSED_ALLOW
            );
            Ok(0)
        }
        "audit" => {
            if write {
                let n = cnalint::run_audit_write(&root, "docs/orderings.md")?;
                eprintln!("cnalint: audit table rewritten ({n} rows)");
                Ok(0)
            } else {
                // `audit` without --write is a check restricted to R1.
                let mut opts = Options::new(root);
                opts.only_rules = Some(vec![rules::R1]);
                run_and_render(&opts, &format)
            }
        }
        _ => {
            let mut opts = Options::new(root);
            opts.deny_warnings = deny_warnings;
            if !only.is_empty() {
                opts.only_rules = Some(only);
            }
            run_and_render(&opts, &format)
        }
    }
}

fn run_and_render(opts: &Options, format: &str) -> Result<u8, String> {
    let out = cnalint::run_check(opts).map_err(|e| format!("scan failed: {e}"))?;
    if format == "json" {
        print!("{}", cnalint::render_json(&out));
    } else {
        print!("{}", cnalint::render_human(&out));
    }
    Ok(out.exit_code() as u8)
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via `cargo run
/// -p cnalint` (so it works from any cwd inside the repo), else the cwd.
fn default_root() -> PathBuf {
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(md);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            if root.join("Cargo.toml").exists() {
                return root.to_path_buf();
            }
        }
    }
    std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."))
}
